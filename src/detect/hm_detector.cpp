#include "detect/hm_detector.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "sim/scan.hpp"

namespace tlbmap {

HmDetector::HmDetector(Machine& machine, int num_threads,
                       HmDetectorConfig config)
    : Detector(num_threads), machine_(&machine), config_(config) {
  if (machine.config().fault.enabled()) {
    fault_.emplace(machine.config().fault, FaultInjector::kHmSalt);
  }
}

HmDetectorState HmDetector::state() const {
  HmDetectorState s;
  s.matrix = matrix_;
  s.searches = searches_;
  s.misses_seen = misses_seen_;
  s.last_sweep = last_sweep_;
  s.pending_delay = pending_delay_;
  s.retry_count = retry_count_;
  s.retry_at = retry_at_;
  return s;
}

void HmDetector::restore(const HmDetectorState& state) {
  if (state.matrix.size() != matrix_.size()) {
    throw std::invalid_argument(
        "HmDetector::restore: snapshot thread count mismatch");
  }
  matrix_ = state.matrix;
  searches_ = state.searches;
  misses_seen_ = state.misses_seen;
  last_sweep_ = state.last_sweep;
  pending_delay_ = state.pending_delay;
  retry_count_ = state.retry_count;
  retry_at_ = state.retry_at;
}

Cycles HmDetector::on_access(ThreadId /*thread*/, CoreId /*core*/,
                             VirtAddr /*addr*/, PageNum /*page*/,
                             AccessType /*type*/, bool tlb_miss,
                             Cycles /*now*/) {
  if (tlb_miss) count_miss();
  return 0;
}

Cycles HmDetector::on_tick(Cycles now) {
  if (fault_) return on_tick_faulty(now);
  // Figure 1b: run a sweep once `interval` cycles have passed since the
  // last one. `now` is a per-thread clock and may jitter backwards slightly
  // relative to the previous call; the early return covers that too.
  if (now < last_sweep_ + config_.interval) return 0;
  // Advance on the interval grid rather than to `now`: snapping to `now`
  // accumulates drift under sparse ticks, so sweeps would run ever later
  // than the configured cadence.
  last_sweep_ += (now - last_sweep_) / config_.interval * config_.interval;
  sweep();
  return config_.search_cost;
}

Cycles HmDetector::on_tick_faulty(Cycles now) {
  // Outstanding retry of a failed sweep: attempt again once the backoff
  // window has passed. Each attempt — failed or not — still stalls the
  // machine for search_cost (the kernel ran either way).
  const RetryPolicy retry = sweep_retry_policy();
  if (retry_count_ > 0) {
    if (now < retry_at_) return 0;
    if (fault_->fail_sweep()) {
      if (!retry.should_retry(retry_count_ + 1)) {
        // Give up: this detection epoch is lost; the regular cadence
        // resumes at the next interval boundary.
        retry_count_ = 0;
        if (obs_ != nullptr && obs_->full()) {
          obs_->tracer.record_instant("HM.sweep_abandoned", "detector", "");
        }
      } else {
        ++retry_count_;
        retry_at_ = now + retry.delay(retry_count_);
      }
      return config_.search_cost;
    }
    retry_count_ = 0;
    if (obs_ != nullptr && obs_->full()) {
      obs_->tracer.record_instant("HM.sweep_retry_ok", "detector", "");
    }
    sweep();
    return config_.search_cost;
  }

  // Same grid cadence as the faultless path, shifted by the injected delay
  // of this epoch (drawn when the previous epoch completed).
  if (now < last_sweep_ + config_.interval + pending_delay_) return 0;
  last_sweep_ += (now - last_sweep_) / config_.interval * config_.interval;
  pending_delay_ = fault_->draw_sweep_delay();
  if (fault_->skip_sweep()) return 0;  // epoch silently lost, no stall
  if (fault_->fail_sweep()) {
    // First failure: charge the attempt and schedule a backoff retry.
    retry_count_ = 1;
    retry_at_ = now + retry.delay(1);
    if (obs_ != nullptr && obs_->full()) {
      obs_->tracer.record_instant("HM.sweep_failed", "detector", "");
    }
    return config_.search_cost;
  }
  sweep();
  return config_.search_cost;
}

void HmDetector::set_observability(obs::ObsContext* obs) {
  Detector::set_observability(obs);
  index_pages_counter_ = nullptr;
  index_entries_counter_ = nullptr;
  match_counter_ = nullptr;
  index_build_us_ = nullptr;
  if (obs != nullptr && obs->phases()) {
    const obs::Labels labels = {{"mechanism", name()}};
    index_pages_counter_ =
        &obs->metrics.counter("detector.index_pages", labels);
    index_entries_counter_ =
        &obs->metrics.counter("detector.index_entries", labels);
    match_counter_ = &obs->metrics.counter("detector.matches", labels);
    index_build_us_ =
        &obs->metrics.histogram("detector.index_build_us", labels);
  }
}

void HmDetector::sweep() {
  count_search();
  if (config_.naive_sweep) {
    sweep_naive();
  } else {
    sweep_indexed();
  }
}

void HmDetector::sweep_naive() {
  const Topology& topo = machine_->topology();
  const MemoryHierarchy& hier = machine_->hierarchy();
  std::uint64_t matches = 0;
  // All possible pairs of TLBs (the SM mechanism's locality argument does
  // not apply: nothing tells the kernel *which* TLB changed).
  for (CoreId a = 0; a < topo.num_cores(); ++a) {
    const ThreadId ta = machine_->thread_on(a);
    if (ta == kNoThread) continue;
    for (CoreId b = a + 1; b < topo.num_cores(); ++b) {
      const ThreadId tb = machine_->thread_on(b);
      if (tb == kNoThread) continue;
      const Tlb& tlb_a = hier.tlb(a);
      const Tlb& tlb_b = hier.tlb(b);
      // Same geometry on every core: walk sets in lockstep and compare only
      // within a set — Theta(S * ways^2) per pair. The SoA tag mirrors turn
      // the inner compare into a dense branch-free span scan.
      if (simd_scan_enabled()) {
        for (std::size_t set = 0; set < tlb_a.num_sets(); ++set) {
          const auto tags_b = tlb_b.set_tags(set);
          for (const std::uint64_t tag : tlb_a.set_tags(set)) {
            if (tag == kInvalidTag) continue;
            if (scan_tags(tags_b.data(), tags_b.size(), tag) >= 0) {
              matrix_.add(ta, tb);
              ++matches;
            }
          }
        }
      } else {
        for (std::size_t set = 0; set < tlb_a.num_sets(); ++set) {
          for (const TlbEntry& ea : tlb_a.set_entries(set)) {
            if (!ea.valid) continue;
            for (const TlbEntry& eb : tlb_b.set_entries(set)) {
              if (eb.valid && eb.page == ea.page) {
                matrix_.add(ta, tb);
                ++matches;
                break;
              }
            }
          }
        }
      }
    }
  }
  if (match_counter_ != nullptr) match_counter_->add(matches);
}

template <typename Sink>
void HmDetector::accumulate_groups(std::size_t begin, std::size_t end,
                                   Sink& sink) const {
  for (std::size_t g = begin; g < end; ++g) {
    const std::size_t lo = group_offsets_[g];
    const std::size_t hi = group_offsets_[g + 1];
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < hi; ++j) {
        sink.add(group_threads_[i], group_threads_[j]);
      }
    }
  }
}

void HmDetector::sweep_indexed() {
  const Topology& topo = machine_->topology();
  const MemoryHierarchy& hier = machine_->hierarchy();

  std::chrono::steady_clock::time_point build_start;
  if (index_build_us_ != nullptr) {
    build_start = std::chrono::steady_clock::now();
  }

  occupied_.clear();
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    const ThreadId t = machine_->thread_on(c);
    if (t != kNoThread) occupied_.emplace_back(c, t);
  }

  // Build the shared-page groups: every page resident in >= 2 occupied
  // TLBs, with its sharer threads. A TLB holds a page at most once (one
  // set, unique within the set), so the naive per-pair match count equals
  // the pairwise intersection size — accumulating C(k, 2) pair counts per
  // k-sharer group reproduces the naive matrix bit for bit.
  group_threads_.clear();
  group_offsets_.clear();
  std::uint64_t entries = 0;
  if (occupied_.size() >= 2 && occupied_.size() <= 64) {
    // Inverted index as page -> one-word bitmask over occupied-core slots.
    page_mask_.clear();
    for (std::size_t slot = 0; slot < occupied_.size(); ++slot) {
      const Tlb& tlb = hier.tlb(occupied_[slot].first);
      if (simd_scan_enabled()) {
        // One dense pass over the whole TLB's tag mirror (set-major, the
        // same enumeration order as the per-set walk below).
        for (const std::uint64_t tag : tlb.tags()) {
          if (tag != kInvalidTag) {
            page_mask_[tag] |= std::uint64_t{1} << slot;
            ++entries;
          }
        }
      } else {
        for (std::size_t set = 0; set < tlb.num_sets(); ++set) {
          for (const TlbEntry& e : tlb.set_entries(set)) {
            if (e.valid) {
              page_mask_[e.page] |= std::uint64_t{1} << slot;
              ++entries;
            }
          }
        }
      }
    }
    for (const auto& [page, mask] : page_mask_) {
      if ((mask & (mask - 1)) == 0) continue;  // fewer than two sharers
      group_offsets_.push_back(group_threads_.size());
      for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        const auto slot = static_cast<std::size_t>(std::countr_zero(m));
        group_threads_.push_back(occupied_[slot].second);
      }
    }
  } else if (occupied_.size() > 64) {
    // Beyond one mask word: gather (page, thread) pairs and group by
    // sorting — same groups, same matrix, still linear space.
    page_entries_.clear();
    for (const auto& [core, thread] : occupied_) {
      const Tlb& tlb = hier.tlb(core);
      if (simd_scan_enabled()) {
        for (const std::uint64_t tag : tlb.tags()) {
          if (tag != kInvalidTag) page_entries_.emplace_back(tag, thread);
        }
      } else {
        for (std::size_t set = 0; set < tlb.num_sets(); ++set) {
          for (const TlbEntry& e : tlb.set_entries(set)) {
            if (e.valid) page_entries_.emplace_back(e.page, thread);
          }
        }
      }
    }
    entries = page_entries_.size();
    std::sort(page_entries_.begin(), page_entries_.end());
    std::size_t i = 0;
    while (i < page_entries_.size()) {
      std::size_t j = i + 1;
      while (j < page_entries_.size() &&
             page_entries_[j].first == page_entries_[i].first) {
        ++j;
      }
      if (j - i >= 2) {
        group_offsets_.push_back(group_threads_.size());
        for (std::size_t k = i; k < j; ++k) {
          group_threads_.push_back(page_entries_[k].second);
        }
      }
      i = j;
    }
  }
  const std::size_t num_groups = group_offsets_.size();
  group_offsets_.push_back(group_threads_.size());  // end sentinel

  if (index_build_us_ != nullptr) {
    index_build_us_->observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - build_start)
            .count());
  }
  if (index_pages_counter_ != nullptr) {
    std::uint64_t matches = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const std::uint64_t k = group_offsets_[g + 1] - group_offsets_[g];
      matches += k * (k - 1) / 2;
    }
    index_pages_counter_->add(num_groups);
    index_entries_counter_->add(entries);
    match_counter_->add(matches);
  }

  // Accumulate pair counts: inline for one worker, else into per-worker
  // shards merged in worker order. Unsigned sums commute, so any worker
  // count yields the identical matrix.
  int workers = config_.sweep_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  workers = std::max(1, std::min(workers, static_cast<int>(num_groups)));
  if (workers == 1) {
    accumulate_groups(0, num_groups, matrix_);
    return;
  }
  if (shards_.size() != static_cast<std::size_t>(workers) ||
      shards_.front().size() != matrix_.size()) {
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) shards_.emplace_back(matrix_.size());
  } else {
    for (CommMatrixShard& shard : shards_) shard.clear();
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    const std::size_t begin =
        num_groups * static_cast<std::size_t>(w) / workers;
    const std::size_t end =
        num_groups * (static_cast<std::size_t>(w) + 1) / workers;
    pool.emplace_back([this, w, begin, end] {
      accumulate_groups(begin, end, shards_[static_cast<std::size_t>(w)]);
    });
  }
  accumulate_groups(0, num_groups / static_cast<std::size_t>(workers),
                    shards_.front());
  for (std::thread& t : pool) t.join();
  matrix_.merge(shards_);
}

}  // namespace tlbmap

#include "detect/hm_detector.hpp"

namespace tlbmap {

HmDetector::HmDetector(Machine& machine, int num_threads,
                       HmDetectorConfig config)
    : Detector(num_threads), machine_(&machine), config_(config) {}

Cycles HmDetector::on_access(ThreadId /*thread*/, CoreId /*core*/,
                             VirtAddr /*addr*/, PageNum /*page*/,
                             AccessType /*type*/, bool tlb_miss,
                             Cycles /*now*/) {
  if (tlb_miss) count_miss();
  return 0;
}

Cycles HmDetector::on_tick(Cycles now) {
  // Figure 1b: if not enough time passed since the last search, return.
  // `now` is a per-thread clock and may jitter backwards slightly relative
  // to the previous call; the >= comparison handles that safely.
  if (now < last_sweep_ + config_.interval) return 0;
  last_sweep_ = now;
  sweep();
  return config_.search_cost;
}

void HmDetector::sweep() {
  count_search();
  const Topology& topo = machine_->topology();
  const MemoryHierarchy& hier = machine_->hierarchy();
  // All possible pairs of TLBs (the SM mechanism's locality argument does
  // not apply: nothing tells the kernel *which* TLB changed).
  for (CoreId a = 0; a < topo.num_cores(); ++a) {
    const ThreadId ta = machine_->thread_on(a);
    if (ta == kNoThread) continue;
    for (CoreId b = a + 1; b < topo.num_cores(); ++b) {
      const ThreadId tb = machine_->thread_on(b);
      if (tb == kNoThread) continue;
      const Tlb& tlb_a = hier.tlb(a);
      const Tlb& tlb_b = hier.tlb(b);
      // Same geometry on every core: walk sets in lockstep and compare only
      // within a set — Theta(S * ways^2) per pair.
      for (std::size_t set = 0; set < tlb_a.num_sets(); ++set) {
        for (const TlbEntry& ea : tlb_a.set_entries(set)) {
          if (!ea.valid) continue;
          for (const TlbEntry& eb : tlb_b.set_entries(set)) {
            if (eb.valid && eb.page == ea.page) {
              matrix_.add(ta, tb);
              break;
            }
          }
        }
      }
    }
  }
}

}  // namespace tlbmap

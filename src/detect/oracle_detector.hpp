// Ground-truth communication detector.
//
// Reproduces the related-work approach the paper compares against (Cruz et
// al. 2011 / Barrow-Williams et al. 2009): instrument *every* memory access
// in the simulator and count page-level sharing directly. Two threads
// communicate when one accesses a page the other accessed within the last
// `window` accesses — the time bound avoids the false-communication problem
// (paper Sec. III-B5) of counting accesses that are arbitrarily far apart.
//
// The oracle is free of charge in simulated time (it is offline tooling, the
// very cost the paper's mechanism eliminates); it exists as the accuracy
// reference for Figures 4/5 and the ablation benches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/detector.hpp"

namespace tlbmap {

struct OracleDetectorConfig {
  /// Two accesses to a page count as communication when they are at most
  /// this many (global) accesses apart. 0 = unlimited window.
  std::uint64_t window = 1u << 22;
  /// Sharing granularity: addresses are truncated to this many bits before
  /// comparison. 12 = pages (the TLB mechanism's granularity), 6 = cache
  /// lines (isolates true sharing from page-level false sharing — paper
  /// Sec. III-B5).
  int granularity_shift = 12;
};

class OracleDetector final : public Detector {
 public:
  explicit OracleDetector(int num_threads, OracleDetectorConfig config = {});

  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles /*now*/) override { return 0; }

  std::string name() const override { return "oracle"; }

  /// Distinct sharing units (pages or lines) that had at least one access.
  std::size_t pages_seen() const { return last_touch_.size(); }

 private:
  OracleDetectorConfig config_;
  int num_threads_;
  std::uint64_t access_count_ = 0;
  /// Per sharing unit: global access counter at each thread's last touch
  /// (0 = never).
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> last_touch_;
};

}  // namespace tlbmap

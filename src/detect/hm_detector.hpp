// Hardware-managed TLB mechanism (paper Sec. IV-B, Figure 1b).
//
// x86-style TLBs are refilled by a hardware page walker, so the OS never
// sees misses. The paper proposes a small ISA extension that lets the kernel
// read TLB contents; the kernel then periodically (every `interval` cycles,
// 10M in the paper) compares **all pairs** of TLBs and increments the
// communication matrix per matching entry.
//
// The paper's literal sweep walks every pair of TLBs set by set —
// Theta(P^2 * S * w^2) per sweep — and dominates simulator wall-clock on
// large topologies. The default implementation here instead builds a
// transient inverted page index (page -> bitmask of occupied cores) in
// Theta(P * S * w) and accumulates pair counts only for pages that are
// actually shared, which produces a bit-identical matrix: a TLB holds a page
// at most once, so the naive per-pair count is exactly the size of the two
// TLBs' page-set intersection. The naive walk stays available behind
// `naive_sweep` for A/B benchmarking, and `sweep_workers` fans the
// accumulation out over per-worker CommMatrixShards with a deterministic
// merge.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "core/retry.hpp"
#include "detect/detector.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct HmDetectorConfig {
  /// Cycles between sweeps (the paper's n = 10,000,000).
  Cycles interval = 10'000'000;
  /// Cycles one full sweep costs (paper measures 84,297 for 8 cores); the
  /// machine stalls every thread for this long, modelling the kernel-wide
  /// interruption.
  Cycles search_cost = 84'297;
  /// Use the paper's literal all-pairs set walk instead of the inverted
  /// page index. Both paths produce bit-identical matrices; this exists so
  /// benches can measure the speedup rather than assert it.
  bool naive_sweep = false;
  /// Worker threads accumulating the indexed sweep's pair counts into
  /// per-worker CommMatrixShards (merged deterministically afterwards).
  /// <= 1 accumulates inline; more only pays off from ~32 occupied cores.
  int sweep_workers = 1;
};

/// Serializable mid-run snapshot of an HmDetector (DESIGN.md Sec. 12): the
/// accumulated matrix plus the sweep cadence and retry cursors. Restoring
/// it into a fresh detector of the same shape reproduces the original's
/// future sweep schedule exactly (faultless plans; an injector's stream
/// position is not part of the snapshot).
struct HmDetectorState {
  CommMatrix matrix{1};
  std::uint64_t searches = 0;
  std::uint64_t misses_seen = 0;
  Cycles last_sweep = 0;     ///< interval-grid anchor of the next due sweep
  Cycles pending_delay = 0;  ///< injected delay of the next due sweep
  std::int32_t retry_count = 0;  ///< outstanding retries of a failed sweep
  Cycles retry_at = 0;       ///< earliest time the next retry may run

  bool operator==(const HmDetectorState&) const = default;
};

class HmDetector final : public Detector {
 public:
  HmDetector(Machine& machine, int num_threads, HmDetectorConfig config = {});

  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles now) override;

  std::string name() const override { return "HM"; }
  const HmDetectorConfig& config() const { return config_; }
  const FaultCounters* fault_counters() const override {
    return fault_ ? &fault_->counters() : nullptr;
  }

  void set_observability(obs::ObsContext* obs) override;

  /// Runs one sweep immediately (exposed for tests and for the dynamic
  /// migration example, which re-detects on demand).
  void sweep();

  /// Copies out the matrix and cursors (checkpoint support).
  HmDetectorState state() const;
  /// Overwrites the matrix and cursors from a snapshot. Throws
  /// std::invalid_argument when the snapshot's matrix size does not match
  /// this detector's thread count.
  void restore(const HmDetectorState& state);

  /// The sweep-retry schedule as the shared RetryPolicy (DESIGN.md
  /// Sec. 16): kMaxSweepRetries attempts, base interval/8, doubling, no
  /// jitter — bit-identical to the hand-rolled loop this site had before
  /// the policy existed (the fault tests pin the cadence).
  RetryPolicy sweep_retry_policy() const {
    RetryPolicy policy;
    policy.max_attempts = kMaxSweepRetries;
    policy.base_delay = config_.interval / 8 > 0 ? config_.interval / 8 : 1;
    return policy;
  }

 private:
  /// Fault-aware tick path: identical cadence plus injected sweep delays,
  /// silent skips, and failed sweeps retried under exponential backoff.
  Cycles on_tick_faulty(Cycles now);
  void sweep_naive();
  void sweep_indexed();
  /// Adds C(k, 2) pair counts for the shared-page groups [begin, end).
  template <typename Sink>
  void accumulate_groups(std::size_t begin, std::size_t end, Sink& sink) const;

  Machine* machine_;
  HmDetectorConfig config_;
  Cycles last_sweep_ = 0;

  /// Engaged only when the machine's FaultPlan is enabled; otherwise
  /// on_tick runs the exact pre-fault-injection path.
  std::optional<FaultInjector> fault_;
  /// Give up on a failed sweep after this many backoff retries (the epoch
  /// is lost; detection resumes at the next interval).
  static constexpr int kMaxSweepRetries = 4;
  Cycles pending_delay_ = 0;  ///< injected delay of the next due sweep
  int retry_count_ = 0;       ///< outstanding retries of a failed sweep
  Cycles retry_at_ = 0;       ///< earliest time the next retry may run

  // Scratch reused across sweeps so the hot path stays allocation-free
  // after warm-up. `group_threads_` holds the sharer threads of every page
  // seen in >= 2 TLBs, as runs delimited by `group_offsets_` (with an end
  // sentinel).
  std::vector<std::pair<CoreId, ThreadId>> occupied_;
  std::unordered_map<PageNum, std::uint64_t> page_mask_;
  std::vector<std::pair<PageNum, ThreadId>> page_entries_;
  std::vector<ThreadId> group_threads_;
  std::vector<std::size_t> group_offsets_;
  std::vector<CommMatrixShard> shards_;

  // Observability sinks resolved once per context (null = off).
  obs::Counter* index_pages_counter_ = nullptr;
  obs::Counter* index_entries_counter_ = nullptr;
  obs::Counter* match_counter_ = nullptr;
  obs::Histogram* index_build_us_ = nullptr;
};

}  // namespace tlbmap

// Hardware-managed TLB mechanism (paper Sec. IV-B, Figure 1b).
//
// x86-style TLBs are refilled by a hardware page walker, so the OS never
// sees misses. The paper proposes a small ISA extension that lets the kernel
// read TLB contents; the kernel then periodically (every `interval` cycles,
// 10M in the paper) compares **all pairs** of TLBs and increments the
// communication matrix per matching entry. Sets are walked in lockstep, so
// one sweep is Theta(P^2 * S) for set-associative TLBs.
#pragma once

#include <cstdint>

#include "detect/detector.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct HmDetectorConfig {
  /// Cycles between sweeps (the paper's n = 10,000,000).
  Cycles interval = 10'000'000;
  /// Cycles one full sweep costs (paper measures 84,297 for 8 cores); the
  /// machine stalls every thread for this long, modelling the kernel-wide
  /// interruption.
  Cycles search_cost = 84'297;
};

class HmDetector final : public Detector {
 public:
  HmDetector(Machine& machine, int num_threads, HmDetectorConfig config = {});

  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles now) override;

  std::string name() const override { return "HM"; }
  const HmDetectorConfig& config() const { return config_; }

  /// Runs one sweep immediately (exposed for tests and for the dynamic
  /// migration example, which re-detects on demand).
  void sweep();

 private:
  Machine* machine_;
  HmDetectorConfig config_;
  Cycles last_sweep_ = 0;
};

}  // namespace tlbmap

#include "detect/oracle_detector.hpp"

namespace tlbmap {

OracleDetector::OracleDetector(int num_threads, OracleDetectorConfig config)
    : Detector(num_threads), config_(config), num_threads_(num_threads) {}

Cycles OracleDetector::on_access(ThreadId thread, CoreId /*core*/,
                                 VirtAddr addr, PageNum /*page*/,
                                 AccessType /*type*/, bool tlb_miss,
                                 Cycles /*now*/) {
  if (tlb_miss) count_miss();
  ++access_count_;
  const std::uint64_t unit = addr >> config_.granularity_shift;
  auto [it, inserted] = last_touch_.try_emplace(
      unit, static_cast<std::size_t>(num_threads_), 0);
  std::vector<std::uint64_t>& touches = it->second;
  for (ThreadId other = 0; other < num_threads_; ++other) {
    if (other == thread || touches[static_cast<std::size_t>(other)] == 0) {
      continue;
    }
    const std::uint64_t age =
        access_count_ - touches[static_cast<std::size_t>(other)];
    if (config_.window == 0 || age <= config_.window) {
      matrix_.add(thread, other);
    }
  }
  touches[static_cast<std::size_t>(thread)] = access_count_;
  return 0;
}

}  // namespace tlbmap

// Workload substrate: NPB-like trace generators.
//
// The paper evaluates with the OpenMP NAS Parallel Benchmarks (W class,
// 8 threads). We cannot run the real binaries inside this simulator, so each
// benchmark is modelled as a miniature kernel that reproduces its published
// memory-sharing structure (paper Sec. VI-A and Cruz et al. 2011):
//
//   BT/SP/LU  3-D solvers, slab domain decomposition: heavy halo exchange
//             with +-1 neighbours (LU adds a periodic wrap pair and a small
//             globally shared pipeline buffer -> distant communication).
//   MG        multigrid V-cycle: neighbour halos at several grid levels plus
//             strided restriction reads reaching into neighbour slabs.
//   CG        sparse CG: private row block, banded gathers overlapping the
//             neighbours, and a small hot reduction page shared by all.
//   FT        FFT: private compute plus an all-to-all transpose
//             (homogeneous pattern).
//   IS        bucket sort: random key histogramming, all-to-all exchange of
//             small count arrays, ranked scatter crossing slab boundaries;
//             touches many pages randomly -> by far the highest TLB miss
//             rate (paper Table III).
//   EP        embarrassingly parallel: private data, one final reduction.
//   UA        unstructured adaptive: random accesses over the owned
//             elements, halo reads, and occasional global randomness.
//
// Every kernel is expressed as a declarative AccessProgram per thread and
// interpreted lazily, so workload definitions stay compact and testable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/access_program.hpp"
#include "sim/workload.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {

struct WorkloadParams {
  int num_threads = 8;
  /// Multiplies array sizes (1.0 = the defaults documented per kernel).
  double size_scale = 1.0;
  /// Multiplies outer iteration counts.
  double iter_scale = 1.0;
  /// Per-access compute jitter bound (cycles); 0 = fully deterministic.
  std::uint32_t gap_jitter = 1;
};

/// Base for workloads defined by a per-thread AccessProgram.
class ProgramWorkload : public Workload {
 public:
  ProgramWorkload(std::string name, std::string description,
                  WorkloadParams params)
      : name_(std::move(name)),
        description_(std::move(description)),
        params_(params) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  int num_threads() const override { return params_.num_threads; }

  std::unique_ptr<ThreadStream> stream(ThreadId t,
                                       std::uint64_t seed) const override;
  std::uint64_t accesses_of(ThreadId t) const override;

  /// The thread's program (exposed so tests can assert on its structure).
  virtual AccessProgram program(ThreadId t) const = 0;

  const WorkloadParams& params() const { return params_; }

 protected:
  /// Scaled page count (>= 1) and iteration count (>= 1).
  std::uint64_t pages(double base_pages) const;
  std::uint32_t iters(double base_iters) const;

  std::string name_;
  std::string description_;
  WorkloadParams params_;
};

/// The nine NPB kernels evaluated in the paper (DC is excluded there too).
const std::vector<std::string>& npb_workload_names();

/// Factory; throws std::invalid_argument for unknown names. Accepts the
/// NPB names (case-insensitive): bt cg ep ft is lu mg sp ua. Two scenario
/// names extend the registry (ROADMAP "scenario diversity"): "CHURN" is a
/// seeded phase-churn synthetic whose sharing pattern flips every few
/// barriers, and "MP:APP+APP[+APP...]" co-schedules several apps as one
/// multiprogrammed workload with disjoint address spaces (each app gets
/// params.num_threads threads).
std::unique_ptr<Workload> make_npb_workload(std::string_view name,
                                            const WorkloadParams& params = {});

// Individual factories (the registry dispatches to these).
std::unique_ptr<Workload> make_bt(const WorkloadParams& params);
std::unique_ptr<Workload> make_cg(const WorkloadParams& params);
std::unique_ptr<Workload> make_ep(const WorkloadParams& params);
std::unique_ptr<Workload> make_ft(const WorkloadParams& params);
std::unique_ptr<Workload> make_is(const WorkloadParams& params);
std::unique_ptr<Workload> make_lu(const WorkloadParams& params);
std::unique_ptr<Workload> make_mg(const WorkloadParams& params);
std::unique_ptr<Workload> make_sp(const WorkloadParams& params);
std::unique_ptr<Workload> make_ua(const WorkloadParams& params);

// ---------------------------------------------------------------------------
// Layout helpers shared by the kernels.

/// Size of one simulated page in bytes (must match MachineConfig.page_size).
inline constexpr std::uint64_t kPageBytes = 4096;
inline constexpr std::uint32_t kElemBytes = 8;
inline constexpr std::uint64_t kElemsPerPage = kPageBytes / kElemBytes;

/// A named, page-aligned block of the shared virtual address space.
struct Region {
  VirtAddr base = 0;
  std::uint64_t bytes = 0;

  std::uint64_t elems() const { return bytes / kElemBytes; }
  std::uint64_t pages() const { return bytes / kPageBytes; }

  /// Contiguous sub-slice in elements (byte granularity preserved).
  Region slice_elems(std::uint64_t first_elem, std::uint64_t n_elems) const;
  /// Thread t's slab of an array split evenly (page-aligned) among n.
  Region slab(int t, int n) const;
  /// First `n` pages / last `n` pages (halo planes).
  Region first_pages(std::uint64_t n) const;
  Region last_pages(std::uint64_t n) const;
};

/// Hands out disjoint page-aligned regions of the shared address space.
class Arena {
 public:
  explicit Arena(VirtAddr base = VirtAddr{1} << 32) : next_(base) {}

  Region alloc_pages(std::uint64_t num_pages);

 private:
  VirtAddr next_;
};

// Walk constructors (count defaults to one visit per element).
Walk sweep(Region r, Walk::Mix mix, std::uint32_t gap, std::uint32_t jitter);
Walk random_walk(Region r, Walk::Mix mix, std::uint64_t count,
                 std::uint32_t gap, std::uint32_t jitter);
Walk strided_walk(Region r, Walk::Mix mix, std::int64_t stride,
                  std::uint64_t count, std::uint32_t gap,
                  std::uint32_t jitter);

}  // namespace tlbmap

// MG — Multigrid V-cycle.
//
// Three grid levels, each slab-decomposed. Per V-cycle a thread smooths each
// level (halo reads from both neighbours, re-read twice per smoothing pass)
// and restricts with strided reads that reach into the neighbour slabs. The
// mix is read-dominated sharing: many cache-to-cache transfers but only one
// owner rewrite per level per cycle, which reproduces MG's signature in the
// paper — the largest snoop-transaction reduction (65.4 %) but the smallest
// invalidation reduction of the domain-decomposition codes.
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class MgWorkload final : public ProgramWorkload {
 public:
  explicit MgWorkload(const WorkloadParams& p)
      : ProgramWorkload(
            "MG", "multigrid V-cycle; multi-level halos, read-heavy sharing",
            p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    // Grid levels, fine to coarse; each thread owns one slab per level.
    level_pages_ = {pages(96), pages(24), pages(6)};
    for (const std::uint64_t lp : level_pages_) {
      grids_.push_back(arena.alloc_pages(lp * n));
    }
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;

    AccessProgram prog;
    for (std::size_t level = 0; level < grids_.size(); ++level) {
      const Region& grid = grids_[level];
      const Region mine = grid.slab(t, n);

      // Smoothing: re-read the neighbour halos (twice) around own reads.
      Phase smooth;
      smooth.walks.push_back(
          strided_walk(mine, Walk::Mix::kRead, 8, mine.elems() / 8, 1, j));
      for (const int nb : {t - 1, t + 1}) {
        if (nb < 0 || nb >= n) continue;
        Walk halo = (nb == t - 1)
                        ? sweep(grid.slab(nb, n).last_pages(1),
                                Walk::Mix::kRead, 1, j)
                        : sweep(grid.slab(nb, n).first_pages(1),
                                Walk::Mix::kRead, 1, j);
        smooth.walks.push_back(halo);
      }
      smooth.walks.push_back(
          strided_walk(mine, Walk::Mix::kWrite, 16, mine.elems() / 16, 1, j));

      // Restriction to the next-coarser level: strided sample over a window
      // spanning the own slab plus a few boundary pages of each neighbour
      // (the restriction stencil reaches one coarse cell outward).
      Phase restrict_phase;
      if (level + 1 < grids_.size()) {
        const Region mine_full = grid.slab(t, n);
        const std::uint64_t reach =
            std::min<std::uint64_t>(4, mine_full.pages() / 2) * kPageBytes;
        VirtAddr lo = mine_full.base;
        VirtAddr hi = mine_full.base + mine_full.bytes;
        if (t > 0) lo -= reach;
        if (t < n - 1) hi += reach;
        const Region window{lo, hi - lo};
        restrict_phase.walks.push_back(strided_walk(
            window, Walk::Mix::kRead, 64, window.elems() / 64, 1, j));
        const Region coarse = grids_[level + 1].slab(t, n);
        restrict_phase.walks.push_back(strided_walk(
            coarse, Walk::Mix::kWrite, 8, coarse.elems() / 8, 1, j));
      }

      prog.phases.push_back(std::move(smooth));
      if (!restrict_phase.walks.empty()) {
        prog.phases.push_back(std::move(restrict_phase));
      }
    }
    prog.iterations = iters(5);
    return prog;
  }

 private:
  std::vector<std::uint64_t> level_pages_;
  std::vector<Region> grids_;
};

}  // namespace

std::unique_ptr<Workload> make_mg(const WorkloadParams& params) {
  return std::make_unique<MgWorkload>(params);
}

}  // namespace tlbmap

// IS — Integer Sort (bucket sort).
//
// Three phases per repetition: histogram private keys with random reads
// over a large key array, exchange the small per-thread count arrays
// all-to-all, then scatter keys into rank positions of the global output —
// a window that straddles the neighbouring slabs. The random sweeps over
// many pages give IS by far the highest TLB miss rate of the suite, which
// is why it shows the highest SM overhead in the paper's Table III (4.1 %
// vs < 1 % for everything else).
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class IsWorkload final : public ProgramWorkload {
 public:
  explicit IsWorkload(const WorkloadParams& p)
      : ProgramWorkload("IS",
                        "integer bucket sort; random keys, count exchange, "
                        "rank scatter",
                        p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    keys_pages_ = pages(80);
    out_pages_ = pages(32);
    keys_ = arena.alloc_pages(keys_pages_ * n);
    counts_ = arena.alloc_pages(n);  // one page per thread
    output_ = arena.alloc_pages(out_pages_ * n);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;

    // Histogram: random reads over the (large, private) key slab.
    Phase histogram;
    histogram.walks.push_back(
        random_walk(keys_.slab(t, n), Walk::Mix::kRead, 8192, 0, j));
    histogram.walks.push_back(
        sweep(counts_.slab(t, n), Walk::Mix::kReadWrite, 0, j));

    // Exchange: read every other thread's count page to compute ranks.
    Phase exchange;
    for (int other = 0; other < n; ++other) {
      if (other == t) continue;
      exchange.walks.push_back(
          sweep(counts_.slab(other, n), Walk::Mix::kRead, 0, j));
    }

    // Scatter: write keys into rank positions; ranks spill a few pages into
    // the neighbouring slabs of the output array.
    Phase scatter;
    const Region my_out = output_.slab(t, n);
    const std::uint64_t spill = (out_pages_ / 16 + 1) * kPageBytes;
    VirtAddr lo = my_out.base;
    VirtAddr hi = my_out.base + my_out.bytes;
    if (t > 0) lo -= spill;
    if (t < n - 1) hi += spill;
    const Region window{lo, hi - lo};
    scatter.walks.push_back(random_walk(window, Walk::Mix::kWrite, 3072, 0,
                                        j));

    AccessProgram prog;
    prog.phases = {histogram, exchange, scatter};
    prog.iterations = iters(5);
    return prog;
  }

 private:
  std::uint64_t keys_pages_, out_pages_;
  Region keys_, counts_, output_;
};

}  // namespace

std::unique_ptr<Workload> make_is(const WorkloadParams& params) {
  return std::make_unique<IsWorkload>(params);
}

}  // namespace tlbmap

// Multiprogrammed scenarios: several applications co-scheduled as one
// workload on a shared machine (ROADMAP "scenario diversity"; cf. the
// multiprogramming thread-mapping strategy of arXiv:1403.8020).
//
// App k's threads occupy the contiguous global id range
// [offset_k, offset_k + threads_k). Each app keeps its own virtual address
// space: every address its streams emit is displaced by a per-app offset
// far above the shared Arena, so apps never share a page and the detected
// communication matrix is block-diagonal — the mapper has to arbitrate
// placements *between* tenants, not just within one.
//
// Barriers stay machine-global (the simulator's barrier releases when every
// live thread arrives), which models gang-scheduled co-execution: apps
// proceed in lockstep while both run, and a finished app's threads stop
// participating. Phase changes of one app therefore perturb the observed
// miss rates of the other — exactly the regime the self-stabilizing
// OnlineMapper (DESIGN.md Sec. 17) has to survive.
#pragma once

#include <memory>
#include <vector>

#include "sim/workload.hpp"

namespace tlbmap {

/// Combines `apps` into one co-scheduled workload. Needs at least one app;
/// takes ownership. Thread ids are assigned app-major in the given order.
std::unique_ptr<Workload> make_multiprogram(
    std::vector<std::unique_ptr<Workload>> apps);

}  // namespace tlbmap

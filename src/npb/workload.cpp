#include "npb/workload.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "npb/multiprogram.hpp"
#include "npb/synthetic.hpp"

namespace tlbmap {

std::unique_ptr<ThreadStream> ProgramWorkload::stream(
    ThreadId t, std::uint64_t seed) const {
  // Mix the thread id into the seed so threads draw distinct random streams
  // even for seed 0.
  const std::uint64_t mixed =
      seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(t) + 1;
  return std::make_unique<ProgramStream>(program(t), mixed);
}

std::uint64_t ProgramWorkload::accesses_of(ThreadId t) const {
  return program(t).total_accesses();
}

std::uint64_t ProgramWorkload::pages(double base_pages) const {
  const double scaled = base_pages * params_.size_scale;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(scaled));
}

std::uint32_t ProgramWorkload::iters(double base_iters) const {
  const double scaled = base_iters * params_.iter_scale;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(scaled));
}

const std::vector<std::string>& npb_workload_names() {
  static const std::vector<std::string> kNames = {
      "BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA"};
  return kNames;
}

std::unique_ptr<Workload> make_npb_workload(std::string_view name,
                                            const WorkloadParams& params) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Co-scheduled multiprogram: "MP:SP+CG" runs both kernels as one
  // workload sharing the machine, with disjoint address spaces and
  // app-major thread ids (each app gets `params.num_threads` threads).
  if (upper.rfind("MP:", 0) == 0) {
    std::vector<std::unique_ptr<Workload>> apps;
    std::string rest = upper.substr(3);
    std::size_t start = 0;
    while (start <= rest.size()) {
      const std::size_t plus = rest.find('+', start);
      const std::string app =
          rest.substr(start, plus == std::string::npos ? plus : plus - start);
      if (app.empty()) {
        throw std::invalid_argument("multiprogram spec needs MP:APP+APP: " +
                                    std::string(name));
      }
      apps.push_back(make_npb_workload(app, params));
      if (plus == std::string::npos) break;
      start = plus + 1;
    }
    if (apps.size() < 2) {
      throw std::invalid_argument("multiprogram spec needs at least 2 apps: " +
                                  std::string(name));
    }
    return make_multiprogram(std::move(apps));
  }
  // Seeded phase-churn synthetic: sharing pattern flips between seeded
  // pair shifts every few barriers (iter_scale stretches each phase).
  if (upper == "CHURN") {
    SyntheticSpec spec;
    spec.pattern = SyntheticSpec::Pattern::kPhaseChurn;
    spec.num_threads = params.num_threads;
    spec.gap_jitter = params.gap_jitter;
    spec.churn_phases = 4;
    spec.churn_phase_iters = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(2 * params.iter_scale));
    spec.shared_accesses = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(2048 * params.size_scale));
    spec.private_accesses = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(2048 * params.size_scale));
    return make_synthetic(spec);
  }
  if (upper == "BT") return make_bt(params);
  if (upper == "CG") return make_cg(params);
  if (upper == "EP") return make_ep(params);
  if (upper == "FT") return make_ft(params);
  if (upper == "IS") return make_is(params);
  if (upper == "LU") return make_lu(params);
  if (upper == "MG") return make_mg(params);
  if (upper == "SP") return make_sp(params);
  if (upper == "UA") return make_ua(params);
  throw std::invalid_argument("unknown NPB workload: " + std::string(name));
}

Region Region::slice_elems(std::uint64_t first_elem,
                           std::uint64_t n_elems) const {
  if ((first_elem + n_elems) * kElemBytes > bytes) {
    throw std::out_of_range("Region::slice_elems: out of range");
  }
  return Region{base + first_elem * kElemBytes, n_elems * kElemBytes};
}

Region Region::slab(int t, int n) const {
  const std::uint64_t total_pages = pages();
  const std::uint64_t per = total_pages / static_cast<std::uint64_t>(n);
  if (per == 0) {
    throw std::invalid_argument("Region::slab: fewer pages than threads");
  }
  const std::uint64_t first = static_cast<std::uint64_t>(t) * per;
  // Last slab absorbs the remainder.
  const std::uint64_t count =
      (t == n - 1) ? total_pages - first : per;
  return Region{base + first * kPageBytes, count * kPageBytes};
}

Region Region::first_pages(std::uint64_t n) const {
  const std::uint64_t take = std::min(n, pages());
  return Region{base, take * kPageBytes};
}

Region Region::last_pages(std::uint64_t n) const {
  const std::uint64_t take = std::min(n, pages());
  return Region{base + (pages() - take) * kPageBytes, take * kPageBytes};
}

Region Arena::alloc_pages(std::uint64_t num_pages) {
  if (num_pages == 0) {
    throw std::invalid_argument("Arena::alloc_pages: zero pages");
  }
  Region r{next_, num_pages * kPageBytes};
  next_ += num_pages * kPageBytes;
  return r;
}

Walk sweep(Region r, Walk::Mix mix, std::uint32_t gap, std::uint32_t jitter) {
  Walk w;
  w.base = r.base;
  w.length = r.bytes;
  w.elem_size = kElemBytes;
  w.pattern = Walk::Pattern::kSequential;
  w.mix = mix;
  w.count = r.elems();
  w.compute_gap = gap;
  w.gap_jitter = jitter;
  return w;
}

Walk random_walk(Region r, Walk::Mix mix, std::uint64_t count,
                 std::uint32_t gap, std::uint32_t jitter) {
  Walk w;
  w.base = r.base;
  w.length = r.bytes;
  w.elem_size = kElemBytes;
  w.pattern = Walk::Pattern::kRandom;
  w.mix = mix;
  w.count = count;
  w.compute_gap = gap;
  w.gap_jitter = jitter;
  return w;
}

Walk strided_walk(Region r, Walk::Mix mix, std::int64_t stride,
                  std::uint64_t count, std::uint32_t gap,
                  std::uint32_t jitter) {
  Walk w;
  w.base = r.base;
  w.length = r.bytes;
  w.elem_size = kElemBytes;
  w.pattern = Walk::Pattern::kSequential;
  w.stride = stride;
  w.mix = mix;
  w.count = count;
  w.compute_gap = gap;
  w.gap_jitter = jitter;
  return w;
}

}  // namespace tlbmap

// FT — 3-D Fast Fourier Transform.
//
// Per time step each thread transforms its own slab, then the distributed
// transpose makes every thread read an equal-sized chunk from every other
// thread's slab: a textbook all-to-all. The resulting communication matrix
// is homogeneous (paper Sec. VI-A), so thread mapping has nothing to
// exploit — FT is a control for "communication everywhere, gain nowhere".
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class FtWorkload final : public ProgramWorkload {
 public:
  explicit FtWorkload(const WorkloadParams& p)
      : ProgramWorkload("FT", "3-D FFT; all-to-all transpose, homogeneous",
                        p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    slab_pages_ = pages(64);
    grid_ = arena.alloc_pages(slab_pages_ * n);
    scratch_ = arena.alloc_pages(slab_pages_ * n);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region mine = grid_.slab(t, n);
    const Region my_scratch = scratch_.slab(t, n);

    // Local 1-D FFTs over the owned slab.
    Phase local_fft;
    local_fft.walks.push_back(strided_walk(mine, Walk::Mix::kReadWrite, 8,
                                           mine.elems() / 8, 1, j));

    // Transpose: read chunk t of every other thread's slab, write scratch.
    Phase transpose;
    const std::uint64_t chunk_elems =
        mine.elems() / static_cast<std::uint64_t>(n);
    for (int other = 0; other < n; ++other) {
      if (other == t) continue;
      const Region theirs = grid_.slab(other, n);
      const Region chunk = theirs.slice_elems(
          chunk_elems * static_cast<std::uint64_t>(t), chunk_elems);
      transpose.walks.push_back(
          strided_walk(chunk, Walk::Mix::kRead, 8, chunk.elems() / 8, 1, j));
    }
    transpose.walks.push_back(strided_walk(
        my_scratch, Walk::Mix::kWrite, 8, my_scratch.elems() / 8, 1, j));

    AccessProgram prog;
    prog.phases = {local_fft, transpose};
    prog.iterations = iters(6);
    return prog;
  }

 private:
  std::uint64_t slab_pages_;
  Region grid_, scratch_;
};

}  // namespace

std::unique_ptr<Workload> make_ft(const WorkloadParams& params) {
  return std::make_unique<FtWorkload>(params);
}

}  // namespace tlbmap

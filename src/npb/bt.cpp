// BT — Block Tridiagonal solver.
//
// 3-D structured grid, 1-D slab decomposition: each thread owns a contiguous
// slab of the solution array `u` and of the right-hand side `rhs`. Every
// time step computes the RHS (reading one halo plane from each neighbour's
// slab edge) and then solves, sweeping its own slab read-write. The
// communication signature is the classic domain-decomposition band: thread t
// talks to t-1 and t+1 (paper Fig. 4, BT).
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class BtWorkload final : public ProgramWorkload {
 public:
  explicit BtWorkload(const WorkloadParams& p)
      : ProgramWorkload(
            "BT",
            "block tridiagonal solver; slab decomposition, halo exchange",
            p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    // Slabs well beyond the 64-entry TLB reach so translations recur every
    // sweep (the real W-class grids dwarf the TLB the same way).
    slab_pages_ = pages(96);
    u_ = arena.alloc_pages(slab_pages_ * n);
    rhs_ = arena.alloc_pages(slab_pages_ * n);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region my_u = u_.slab(t, n);
    const Region my_rhs = rhs_.slab(t, n);
    // Compute sweeps sample every 8th element: full page coverage at a
    // realistic access budget.
    const std::int64_t s = 8;

    // Phase 1: compute_rhs — read u (own slab + neighbour halo planes),
    // produce rhs.
    Phase compute_rhs;
    compute_rhs.walks.push_back(
        strided_walk(my_u, Walk::Mix::kRead, s, my_u.elems() / s, 1, j));
    if (t > 0) {
      compute_rhs.walks.push_back(
          sweep(u_.slab(t - 1, n).last_pages(kHaloPages),
                Walk::Mix::kRead, 1, j));
    }
    if (t < n - 1) {
      compute_rhs.walks.push_back(
          sweep(u_.slab(t + 1, n).first_pages(kHaloPages),
                Walk::Mix::kRead, 1, j));
    }
    compute_rhs.walks.push_back(strided_walk(
        my_rhs, Walk::Mix::kReadWrite, s, my_rhs.elems() / s, 1, j));

    // Phase 2: x/y/z solves — update the owned slab in place.
    Phase solve;
    solve.walks.push_back(
        strided_walk(my_u, Walk::Mix::kReadWrite, s, my_u.elems() / s, 1, j));

    AccessProgram prog;
    prog.phases = {compute_rhs, solve};
    prog.iterations = iters(6);
    return prog;
  }

 private:
  static constexpr std::uint64_t kHaloPages = 2;
  std::uint64_t slab_pages_;
  Region u_, rhs_;
};

}  // namespace

std::unique_ptr<Workload> make_bt(const WorkloadParams& params) {
  return std::make_unique<BtWorkload>(params);
}

}  // namespace tlbmap

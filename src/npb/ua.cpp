// UA — Unstructured Adaptive mesh.
//
// Each thread owns a partition of mesh elements accessed in random order
// (unstructured), rewrites its boundary element pages every step, and reads
// the neighbouring partitions' boundary pages repeatedly, with a sprinkle
// of global random reads (adaptive refinement touching remote regions).
// The repeated rewrite-then-remote-read cycle over the halo pages makes UA
// the invalidation-heavy benchmark of the suite — the paper reports its
// largest invalidation reduction (41 %) here.
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class UaWorkload final : public ProgramWorkload {
 public:
  explicit UaWorkload(const WorkloadParams& p)
      : ProgramWorkload("UA",
                        "unstructured adaptive mesh; random owned accesses, "
                        "hot halos, rare global reads",
                        p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    slab_pages_ = pages(64);
    elements_ = arena.alloc_pages(slab_pages_ * n);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region mine = elements_.slab(t, n);
    const std::uint64_t halo = pages(4);

    // Element update: random read-modify-write over the owned partition.
    Phase update;
    update.walks.push_back(
        random_walk(mine, Walk::Mix::kReadWrite, 4096, 6, j));
    // Explicitly rewrite the boundary pages the neighbours will read.
    update.walks.push_back(
        sweep(mine.first_pages(halo), Walk::Mix::kWrite, 1, j));
    update.walks.push_back(
        sweep(mine.last_pages(halo), Walk::Mix::kWrite, 1, j));

    // Face exchange: repeatedly gather from both neighbours' boundaries.
    Phase faces;
    if (t > 0) {
      Walk w = random_walk(elements_.slab(t - 1, n).last_pages(halo),
                           Walk::Mix::kRead, 1024, 1, j);
      faces.walks.push_back(w);
    }
    if (t < n - 1) {
      Walk w = random_walk(elements_.slab(t + 1, n).first_pages(halo),
                           Walk::Mix::kRead, 1024, 1, j);
      faces.walks.push_back(w);
    }
    // Adaptive refinement: occasional reads anywhere in the mesh.
    faces.walks.push_back(
        random_walk(elements_, Walk::Mix::kRead, 64, 1, j));

    // A second rewrite/re-read round per step doubles the
    // invalidate-then-refetch traffic on the halo pages without adding much
    // other work — UA is the invalidation-dominated benchmark of the suite.
    AccessProgram prog;
    prog.phases = {update, faces, update, faces};
    prog.iterations = iters(6);
    return prog;
  }

 private:
  std::uint64_t slab_pages_;
  Region elements_;
};

}  // namespace

std::unique_ptr<Workload> make_ua(const WorkloadParams& params) {
  return std::make_unique<UaWorkload>(params);
}

}  // namespace tlbmap

// CG — Conjugate Gradient with a banded sparse matrix.
//
// Each thread owns a block of matrix rows (private, read-write) and gathers
// vector entries from a band that overlaps the neighbouring blocks; every
// iteration ends with dot-product reductions on one hot shared page touched
// by all threads. The pattern the paper reports: mostly homogeneous (the
// reductions) with subtle domain-decomposition traces (the band) that only
// the SM mechanism picks up.
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class CgWorkload final : public ProgramWorkload {
 public:
  explicit CgWorkload(const WorkloadParams& p)
      : ProgramWorkload(
            "CG",
            "conjugate gradient; banded gathers plus hot shared reductions",
            p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    rows_pages_ = pages(24);
    rows_ = arena.alloc_pages(rows_pages_ * n);
    x_ = arena.alloc_pages(rows_pages_ * n);  // the vector, same split
    reduction_ = arena.alloc_pages(1);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region my_rows = rows_.slab(t, n);

    // Band window of x: own block extended a few pages into each neighbour
    // (the matrix band is narrow relative to the block size).
    const std::uint64_t reach = (rows_pages_ / 16 + 1) * kPageBytes;
    const Region my_x = x_.slab(t, n);
    VirtAddr lo = my_x.base;
    VirtAddr hi = my_x.base + my_x.bytes;
    if (t > 0) lo -= reach;
    if (t < n - 1) hi += reach;
    const Region band{lo, hi - lo};

    Phase spmv;
    spmv.walks.push_back(strided_walk(my_rows, Walk::Mix::kReadWrite, 8,
                                      my_rows.elems() / 8, 1, j));
    spmv.walks.push_back(random_walk(band, Walk::Mix::kRead, 3072, 1, j));
    // Update the owned x block (neighbours' band gathers will re-fetch it).
    spmv.walks.push_back(
        strided_walk(my_x, Walk::Mix::kWrite, 8, my_x.elems() / 8, 1, j));

    Phase reduce;
    Walk hot = random_walk(reduction_, Walk::Mix::kReadWrite, 256, 0, j);
    reduce.walks.push_back(hot);

    AccessProgram prog;
    prog.phases = {spmv, reduce};
    prog.iterations = iters(10);
    return prog;
  }

 private:
  std::uint64_t rows_pages_;
  Region rows_, x_, reduction_;
};

}  // namespace

std::unique_ptr<Workload> make_cg(const WorkloadParams& params) {
  return std::make_unique<CgWorkload>(params);
}

}  // namespace tlbmap

#include "npb/multiprogram.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {
namespace {

/// Address-space stride between co-scheduled apps. Workload arenas start at
/// 1 << 32 and the kernels allocate nowhere near 2^40 bytes, so displacing
/// app k by k * kAppSpace keeps every app's pages disjoint from every
/// other's.
constexpr VirtAddr kAppSpace = VirtAddr{1} << 40;

/// Displaces every access of an inner stream into its app's address space;
/// barriers and stream end pass through untouched.
class OffsetStream final : public ThreadStream {
 public:
  OffsetStream(std::unique_ptr<ThreadStream> inner, VirtAddr offset)
      : inner_(std::move(inner)), offset_(offset) {}

  TraceEvent next() override {
    TraceEvent e = inner_->next();
    if (e.kind == TraceEvent::Kind::kAccess) e.access.addr += offset_;
    return e;
  }

 private:
  std::unique_ptr<ThreadStream> inner_;
  VirtAddr offset_;
};

class MultiProgramWorkload final : public Workload {
 public:
  explicit MultiProgramWorkload(std::vector<std::unique_ptr<Workload>> apps)
      : apps_(std::move(apps)) {
    if (apps_.empty()) {
      throw std::invalid_argument("multiprogram: need at least one app");
    }
    int offset = 0;
    for (const auto& app : apps_) {
      if (!app) {
        throw std::invalid_argument("multiprogram: null app workload");
      }
      offsets_.push_back(offset);
      offset += app->num_threads();
    }
    num_threads_ = offset;
  }

  std::string name() const override {
    std::ostringstream os;
    os << "MP:";
    for (std::size_t k = 0; k < apps_.size(); ++k) {
      if (k > 0) os << "+";
      os << apps_[k]->name();
    }
    return os.str();
  }

  std::string description() const override {
    std::ostringstream os;
    os << "co-scheduled multiprogram of " << apps_.size()
       << " apps with disjoint address spaces";
    return os.str();
  }

  int num_threads() const override { return num_threads_; }

  std::unique_ptr<ThreadStream> stream(ThreadId t,
                                       std::uint64_t seed) const override {
    const std::size_t k = app_of(t);
    // Salt the seed per app so two instances of the same kernel draw
    // distinct random streams even for the same local thread id.
    const std::uint64_t app_seed =
        seed + static_cast<std::uint64_t>(k) * 0x51ED270B9ull;
    return std::make_unique<OffsetStream>(
        apps_[k]->stream(t - offsets_[k], app_seed),
        static_cast<VirtAddr>(k) * kAppSpace);
  }

  std::uint64_t accesses_of(ThreadId t) const override {
    const std::size_t k = app_of(t);
    return apps_[k]->accesses_of(t - offsets_[k]);
  }

 private:
  std::size_t app_of(ThreadId t) const {
    if (t < 0 || t >= num_threads_) {
      throw std::out_of_range("multiprogram: thread id out of range");
    }
    std::size_t k = apps_.size() - 1;
    while (offsets_[k] > t) --k;
    return k;
  }

  std::vector<std::unique_ptr<Workload>> apps_;
  std::vector<int> offsets_;
  int num_threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_multiprogram(
    std::vector<std::unique_ptr<Workload>> apps) {
  return std::make_unique<MultiProgramWorkload>(std::move(apps));
}

}  // namespace tlbmap

// LU — Lower-Upper Gauss-Seidel solver.
//
// Slab decomposition with halo exchange like BT, plus two LU-specific
// features the paper calls out (Sec. VI-A): the SSOR wavefront is pipelined
// through a small shared buffer touched by *every* thread each sweep, and
// the periodic boundary couples the first and the last thread — the
// "communication with the most distant threads" only the SM mechanism
// detects clearly.
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class LuWorkload final : public ProgramWorkload {
 public:
  explicit LuWorkload(const WorkloadParams& p)
      : ProgramWorkload(
            "LU",
            "LU-SSOR solver; halos plus periodic wrap and pipeline buffer",
            p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    slab_pages_ = pages(80);
    u_ = arena.alloc_pages(slab_pages_ * n);
    pipeline_ = arena.alloc_pages(1);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region my_u = u_.slab(t, n);
    const std::int64_t s = 8;
    // Periodic boundary: thread 0's "left" neighbour is thread n-1.
    const int left = (t + n - 1) % n;
    const int right = (t + 1) % n;

    Phase rhs;
    rhs.walks.push_back(
        strided_walk(my_u, Walk::Mix::kRead, s, my_u.elems() / s, 1, j));
    rhs.walks.push_back(
        sweep(u_.slab(left, n).last_pages(1), Walk::Mix::kRead, 1, j));
    rhs.walks.push_back(
        sweep(u_.slab(right, n).first_pages(1), Walk::Mix::kRead, 1, j));

    Phase ssor;
    // Wavefront pipeline: every thread updates the shared token buffer.
    ssor.walks.push_back(
        random_walk(pipeline_, Walk::Mix::kReadWrite, 256, 0, j));
    ssor.walks.push_back(
        strided_walk(my_u, Walk::Mix::kReadWrite, s, my_u.elems() / s, 1, j));

    AccessProgram prog;
    prog.phases = {rhs, ssor};
    prog.iterations = iters(8);
    return prog;
  }

 private:
  std::uint64_t slab_pages_;
  Region u_, pipeline_;
};

}  // namespace

std::unique_ptr<Workload> make_lu(const WorkloadParams& params) {
  return std::make_unique<LuWorkload>(params);
}

}  // namespace tlbmap

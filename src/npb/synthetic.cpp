#include "npb/synthetic.hpp"

#include <stdexcept>

namespace tlbmap {
namespace {

/// splitmix64 finaliser (same public-domain constants as core/fault.cpp):
/// the shift of churn phase p is a pure function of (seed, p), so schedules
/// are reproducible without generator state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class SyntheticWorkload final : public ProgramWorkload {
 public:
  explicit SyntheticWorkload(const SyntheticSpec& spec)
      : ProgramWorkload("synthetic", pattern_name(spec.pattern),
                        WorkloadParams{spec.num_threads, 1.0, 1.0,
                                       spec.gap_jitter}),
        spec_(spec) {
    if (spec.num_threads < 2) {
      throw std::invalid_argument("synthetic: need at least 2 threads");
    }
    if (spec.pattern == SyntheticSpec::Pattern::kScheduled ||
        spec.pattern == SyntheticSpec::Pattern::kPhaseChurn) {
      // Surface a bad schedule at construction, not at first stream read.
      churn_schedule(spec);
    }
    const auto n = static_cast<std::uint64_t>(spec.num_threads);
    Arena arena;
    privates_ = arena.alloc_pages(spec.private_pages * n);
    // One shared buffer per potential pair edge, plus one global buffer.
    for (std::uint64_t e = 0; e < n; ++e) {
      edges_.push_back(arena.alloc_pages(spec.shared_pages));
    }
    global_ = arena.alloc_pages(spec.shared_pages);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = spec_.num_threads;
    AccessProgram prog;
    switch (spec_.pattern) {
      case SyntheticSpec::Pattern::kRing: {
        // Edge e connects threads e and (e+1) mod n.
        Phase ph = base_phase(t);
        add_shared(ph, edge_for(t));                    // right edge
        add_shared(ph, edge_for((t + n - 1) % n));      // left edge
        prog.phases = {ph};
        prog.iterations = spec_.iterations;
        break;
      }
      case SyntheticSpec::Pattern::kPairs: {
        Phase ph = base_phase(t);
        add_shared(ph, edge_for(pair_edge(t, spec_.pair_shift)));
        prog.phases = {ph};
        prog.iterations = spec_.iterations;
        break;
      }
      case SyntheticSpec::Pattern::kAllToAll: {
        Phase ph = base_phase(t);
        Walk w = random_walk(global_, Walk::Mix::kReadWrite,
                             spec_.shared_accesses, spec_.compute_gap,
                             spec_.gap_jitter);
        ph.walks.push_back(w);
        prog.phases = {ph};
        prog.iterations = spec_.iterations;
        break;
      }
      case SyntheticSpec::Pattern::kPrivate: {
        prog.phases = {base_phase(t)};
        prog.iterations = spec_.iterations;
        break;
      }
      case SyntheticSpec::Pattern::kFalseShare: {
        // Thread t owns every n-th cache line of the global buffer: lines
        // t, t+n, t+2n, ... Each line is 8 elements; visiting one element
        // per owned line keeps the lines strictly disjoint across threads.
        Phase ph = base_phase(t);
        Walk w;
        w.base = global_.base;
        w.length = global_.bytes;
        w.elem_size = kElemBytes;
        w.pattern = Walk::Pattern::kSequential;
        w.mix = Walk::Mix::kReadWrite;
        w.start_elem = static_cast<std::uint64_t>(t) * 8;
        w.stride = static_cast<std::int64_t>(n) * 8;
        w.count = spec_.shared_accesses;
        w.compute_gap = spec_.compute_gap;
        w.gap_jitter = spec_.gap_jitter;
        ph.walks.push_back(w);
        prog.phases = {ph};
        prog.iterations = spec_.iterations;
        break;
      }
      case SyntheticSpec::Pattern::kPhaseShift: {
        // One barrier per iteration (not per half), so dynamic mappers get
        // migration points throughout the run.
        Phase first = base_phase(t);
        add_shared(first, edge_for(pair_edge(t, 0)));
        Phase second = base_phase(t);
        add_shared(second, edge_for(pair_edge(t, 1)));
        const std::uint32_t half =
            std::max<std::uint32_t>(1, spec_.iterations / 2);
        for (std::uint32_t i = 0; i < half; ++i) prog.phases.push_back(first);
        for (std::uint32_t i = 0; i < half; ++i) prog.phases.push_back(second);
        prog.iterations = 1;
        break;
      }
      case SyntheticSpec::Pattern::kScheduled:
      case SyntheticSpec::Pattern::kPhaseChurn: {
        // Each schedule entry is one application phase: churn_phase_iters
        // barrier-separated iterations of the kPairs pattern under that
        // entry's shift. Every iteration ends in a barrier, so online
        // mappers get migration points throughout every phase.
        const std::vector<int> schedule = churn_schedule(spec_);
        const std::uint32_t per_phase =
            std::max<std::uint32_t>(1, spec_.churn_phase_iters);
        for (const int shift : schedule) {
          Phase ph = base_phase(t);
          add_shared(ph, edge_for(pair_edge(t, shift)));
          for (std::uint32_t i = 0; i < per_phase; ++i) {
            prog.phases.push_back(ph);
          }
        }
        prog.iterations = 1;
        break;
      }
    }
    return prog;
  }

  /// The edge index thread t uses under pairing with offset `shift`
  /// (shift 0: (0,1)(2,3)...; shift 1: (1,2)(3,4)...(n-1,0)).
  static int pair_edge_for_test(int t, int shift, int n) {
    return pair_edge_impl(t, shift, n);
  }

 private:
  static std::string pattern_name(SyntheticSpec::Pattern p) {
    switch (p) {
      case SyntheticSpec::Pattern::kRing: return "synthetic ring";
      case SyntheticSpec::Pattern::kPairs: return "synthetic pairs";
      case SyntheticSpec::Pattern::kAllToAll: return "synthetic all-to-all";
      case SyntheticSpec::Pattern::kPrivate: return "synthetic private";
      case SyntheticSpec::Pattern::kPhaseShift: return "synthetic phase shift";
      case SyntheticSpec::Pattern::kFalseShare: return "synthetic false sharing";
      case SyntheticSpec::Pattern::kScheduled: return "synthetic scheduled shifts";
      case SyntheticSpec::Pattern::kPhaseChurn: return "synthetic phase churn";
    }
    return "synthetic";
  }

  static int pair_edge_impl(int t, int shift, int n) {
    // Under shift s, partner pairs are (s, s+1), (s+2, s+3), ... modulo n.
    const int r = ((t - shift) % n + n) % n;
    const int base = r - (r % 2);
    return (base + shift) % n;
  }

  int pair_edge(int t, int shift) const {
    return pair_edge_impl(t, shift, spec_.num_threads);
  }

  const Region& edge_for(int e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  Phase base_phase(ThreadId t) const {
    Phase ph;
    ph.walks.push_back(random_walk(privates_.slab(t, spec_.num_threads),
                                   Walk::Mix::kReadWrite,
                                   spec_.private_accesses, spec_.compute_gap,
                                   spec_.gap_jitter));
    return ph;
  }

  void add_shared(Phase& ph, const Region& region) const {
    ph.walks.push_back(random_walk(region, Walk::Mix::kReadWrite,
                                   spec_.shared_accesses, spec_.compute_gap,
                                   spec_.gap_jitter));
  }

  SyntheticSpec spec_;
  Region privates_;
  std::vector<Region> edges_;
  Region global_;
};

}  // namespace

std::vector<int> churn_schedule(const SyntheticSpec& spec) {
  if (spec.pattern == SyntheticSpec::Pattern::kScheduled) {
    if (spec.shift_schedule.empty()) {
      throw std::invalid_argument(
          "synthetic: kScheduled needs a non-empty shift_schedule");
    }
    return spec.shift_schedule;
  }
  std::vector<int> schedule;
  const std::uint32_t phases = std::max<std::uint32_t>(1, spec.churn_phases);
  const auto n = static_cast<std::uint64_t>(std::max(2, spec.num_threads));
  schedule.reserve(phases);
  for (std::uint32_t p = 0; p < phases; ++p) {
    schedule.push_back(
        static_cast<int>(mix64(spec.churn_seed * 0x9E3779B97F4A7C15ull + p) %
                         n));
  }
  return schedule;
}

std::unique_ptr<Workload> make_synthetic(const SyntheticSpec& spec) {
  return std::make_unique<SyntheticWorkload>(spec);
}

}  // namespace tlbmap

// EP — Embarrassingly Parallel.
//
// Each thread generates pseudo-random numbers into private tables with a
// large compute gap per access; the only shared data is one reduction page
// written once at the end. The paper uses EP as the negative control: a
// homogeneous, nearly empty communication matrix where thread mapping can
// not (and should not) help, and where absolute coherence counters are tiny
// so run-to-run noise dominates (its Table V stddevs exceed the deltas).
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class EpWorkload final : public ProgramWorkload {
 public:
  explicit EpWorkload(const WorkloadParams& p)
      : ProgramWorkload("EP",
                        "embarrassingly parallel; private tables, one final "
                        "reduction",
                        p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    table_pages_ = pages(8);
    tables_ = arena.alloc_pages(table_pages_ * n);
    reduction_ = arena.alloc_pages(1);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region mine = tables_.slab(t, n);

    Phase generate;
    generate.walks.push_back(
        random_walk(mine, Walk::Mix::kReadWrite, 4096, 6, j));
    generate.barrier_after = false;  // no synchronisation while generating

    Phase tally;  // runs once at the end (kept outside the iteration count
                  // by giving it a tiny weight relative to generation)
    tally.walks.push_back(random_walk(reduction_, Walk::Mix::kReadWrite, 16,
                                      0, j));

    AccessProgram prog;
    prog.phases = {generate, tally};
    prog.iterations = iters(12);
    return prog;
  }

 private:
  std::uint64_t table_pages_;
  Region tables_, reduction_;
};

}  // namespace

std::unique_ptr<Workload> make_ep(const WorkloadParams& params) {
  return std::make_unique<EpWorkload>(params);
}

}  // namespace tlbmap

// Parameterised synthetic workloads with exactly known communication
// structure. Tests use them to assert detector correctness; the ablation
// benches and the dynamic-migration example use them to control the ground
// truth precisely.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "npb/workload.hpp"

namespace tlbmap {

struct SyntheticSpec {
  enum class Pattern : std::uint8_t {
    kRing,        ///< thread t shares one buffer with each of t-1 and t+1 (periodic)
    kPairs,       ///< threads 2k and 2k+1 share one buffer; nothing else
    kAllToAll,    ///< one buffer shared by everyone
    kPrivate,     ///< no sharing at all
    kPhaseShift,  ///< first half of iterations: kPairs pairing (0,1)(2,3)...;
                  ///< second half: shifted pairing (1,2)(3,4)...(n-1,0)
    kFalseShare,  ///< all threads touch the same pages but strictly disjoint
                  ///< cache lines: page-granularity detectors report
                  ///< communication, line-granularity ground truth says none
    kScheduled,   ///< pair pattern whose shift follows `shift_schedule`:
                  ///< entry p runs for `churn_phase_iters` barrier-separated
                  ///< iterations (the adversarial-flip scenarios of the
                  ///< robustness differential, DESIGN.md Sec. 17)
    kPhaseChurn,  ///< kScheduled with a seeded pseudo-random schedule of
                  ///< `churn_phases` pair shifts drawn from `churn_seed`
  };

  Pattern pattern = Pattern::kPairs;
  int num_threads = 8;
  /// For kPairs: rotate the pairing by this offset — shift 0 pairs
  /// (0,1)(2,3)..., shift 1 pairs (1,2)(3,4)...(n-1,0).
  int pair_shift = 0;
  std::uint64_t shared_pages = 4;    ///< size of each shared buffer
  std::uint64_t private_pages = 16;  ///< size of each private buffer
  std::uint64_t shared_accesses = 2048;   ///< per thread per iteration
  std::uint64_t private_accesses = 4096;  ///< per thread per iteration
  std::uint32_t iterations = 4;
  std::uint32_t compute_gap = 1;
  std::uint32_t gap_jitter = 0;
  // Phase-churn controls (kScheduled / kPhaseChurn only).
  /// Barrier-separated iterations each schedule entry runs for.
  std::uint32_t churn_phase_iters = 2;
  /// kPhaseChurn: number of seeded phases in the generated schedule.
  std::uint32_t churn_phases = 4;
  /// kPhaseChurn: seed of the shift sequence (splitmix64 over (seed, p)).
  std::uint64_t churn_seed = 1;
  /// kScheduled: explicit per-phase pair shifts (must be non-empty).
  std::vector<int> shift_schedule;
};

std::unique_ptr<Workload> make_synthetic(const SyntheticSpec& spec);

/// The pair-shift schedule a kPhaseChurn spec expands to (exposed so tests
/// and scenario builders can derive the ground truth of each phase).
std::vector<int> churn_schedule(const SyntheticSpec& spec);

}  // namespace tlbmap

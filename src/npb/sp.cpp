// SP — Scalar Pentadiagonal solver.
//
// Same slab decomposition as BT but with a higher communication-to-compute
// ratio: wider halo planes (three pages instead of one), no compute gap, and
// more time steps. This is the benchmark where the paper observes the
// largest mapping gains (15.3 % time, 31.1 % L2 misses), precisely because
// so much of its traffic is neighbour exchange.
#include "npb/workload.hpp"

namespace tlbmap {
namespace {

class SpWorkload final : public ProgramWorkload {
 public:
  explicit SpWorkload(const WorkloadParams& p)
      : ProgramWorkload(
            "SP",
            "scalar pentadiagonal solver; wide halos, communication-bound",
            p) {
    const auto n = static_cast<std::uint64_t>(p.num_threads);
    Arena arena;
    slab_pages_ = pages(64);
    u_ = arena.alloc_pages(slab_pages_ * n);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    const std::uint32_t j = params_.gap_jitter;
    const Region my_u = u_.slab(t, n);
    const std::uint64_t halo = pages(4);
    const std::int64_t s = 8;

    // Phase 1: halo exchange + flux computation (read-heavy, touches both
    // neighbour edges; halo planes are read densely).
    Phase exchange;
    exchange.walks.push_back(
        strided_walk(my_u, Walk::Mix::kRead, s, my_u.elems() / s, 0, j));
    if (t > 0) {
      exchange.walks.push_back(
          sweep(u_.slab(t - 1, n).last_pages(halo), Walk::Mix::kRead, 0, j));
    }
    if (t < n - 1) {
      exchange.walks.push_back(
          sweep(u_.slab(t + 1, n).first_pages(halo), Walk::Mix::kRead, 0, j));
    }

    // Phase 2: line solves — rewrite the owned slab (invalidating the halo
    // copies the neighbours just fetched).
    Phase solve;
    solve.walks.push_back(
        strided_walk(my_u, Walk::Mix::kReadWrite, s, my_u.elems() / s, 0, j));

    AccessProgram prog;
    prog.phases = {exchange, solve};
    prog.iterations = iters(12);
    return prog;
  }

 private:
  std::uint64_t slab_pages_;
  Region u_;
};

}  // namespace

std::unique_ptr<Workload> make_sp(const WorkloadParams& params) {
  return std::make_unique<SpWorkload>(params);
}

}  // namespace tlbmap

// Exact maximum-weight perfect matching by bitmask dynamic programming.
//
// O(2^N * N) time and O(2^N) space — only feasible for small N, but
// unconditionally correct. Serves as the test oracle for the blossom
// implementation and as a fallback for tiny machines.
#pragma once

#include "mapping/matching.hpp"

namespace tlbmap {

/// Practical upper bound on N for the DP (2^24 doubles of state).
inline constexpr std::size_t kExactMatchingMaxVertices = 22;

/// Same contract as max_weight_perfect_matching. Throws when N exceeds
/// kExactMatchingMaxVertices.
MatchingResult exact_perfect_matching(const WeightMatrix& w);

}  // namespace tlbmap

#include "mapping/matching.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace tlbmap {

std::vector<std::pair<int, int>> MatchingResult::pairs() const {
  std::vector<std::pair<int, int>> out;
  for (int v = 0; v < static_cast<int>(mate.size()); ++v) {
    if (mate[v] > v) out.emplace_back(v, mate[v]);
  }
  return out;
}

namespace {

// Edmonds' blossom algorithm for maximum weight matching, primal-dual O(n^3)
// formulation. Vertices are 1..n; ids n+1..2n denote contracted blossoms.
// Internally weights are doubled so every dual adjustment stays integral.
class BlossomMatcher {
 public:
  explicit BlossomMatcher(const WeightMatrix& w)
      : n_(static_cast<int>(w.size())), max_v_(2 * n_ + 1) {
    g_.assign(static_cast<std::size_t>(max_v_),
              std::vector<Edge>(static_cast<std::size_t>(max_v_)));
    flower_from_.assign(static_cast<std::size_t>(max_v_),
                        std::vector<int>(static_cast<std::size_t>(n_ + 1), 0));
    flower_.assign(static_cast<std::size_t>(max_v_), {});
    lab_.assign(static_cast<std::size_t>(max_v_), 0);
    match_.assign(static_cast<std::size_t>(max_v_), 0);
    slack_.assign(static_cast<std::size_t>(max_v_), 0);
    st_.assign(static_cast<std::size_t>(max_v_), 0);
    pa_.assign(static_cast<std::size_t>(max_v_), 0);
    s_.assign(static_cast<std::size_t>(max_v_), -1);
    vis_.assign(static_cast<std::size_t>(max_v_), 0);
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        g_[u][v] = Edge{u, v, 0};
      }
    }
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        if (u != v) {
          g_[u][v].w = 2 * w[static_cast<std::size_t>(u - 1)]
                            [static_cast<std::size_t>(v - 1)];
        }
      }
    }
  }

  /// Runs the algorithm; returns mate[] in 0-based form (-1 = unmatched).
  std::vector<int> solve() {
    n_x_ = n_;
    for (int u = 0; u <= n_; ++u) {
      st_[u] = u;
      flower_[u].clear();
    }
    std::int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) {
        flower_from_[u][v] = (u == v ? u : 0);
        w_max = std::max(w_max, g_[u][v].w);
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (matching()) {
    }
    std::vector<int> mate(static_cast<std::size_t>(n_), -1);
    for (int u = 1; u <= n_; ++u) {
      if (match_[u] != 0) mate[static_cast<std::size_t>(u - 1)] = match_[u] - 1;
    }
    return mate;
  }

 private:
  struct Edge {
    int u = 0, v = 0;
    std::int64_t w = 0;
  };

  // Reduced cost of an edge under the current duals (0 = tight).
  std::int64_t e_delta(const Edge& e) const {
    return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w;
  }

  void update_slack(int u, int x) {
    if (slack_[x] == 0 || e_delta(g_[u][x]) < e_delta(g_[slack_[x]][x])) {
      slack_[x] = u;
    }
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (g_[u][x].w > 0 && st_[u] != x && s_[st_[u]] == 0) {
        update_slack(u, x);
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      q_.push_back(x);
      return;
    }
    for (int i : flower_[x]) q_push(i);
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (int i : flower_[x]) set_st(i, b);
    }
  }

  int get_pr(int b, int xr) {
    auto& f = flower_[b];
    const int pr = static_cast<int>(
        std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[u] = g_[u][v].v;
    if (u <= n_) return;
    const Edge e = g_[u][v];
    const int xr = flower_from_[u][e.u];
    const int pr = get_pr(u, xr);
    auto& f = flower_[u];
    for (int i = 0; i < pr; ++i) set_match(f[static_cast<std::size_t>(i)],
                                           f[static_cast<std::size_t>(i ^ 1)]);
    set_match(xr, v);
    std::rotate(f.begin(), f.begin() + pr, f.end());
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (xnv == 0) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++timestamp_; u != 0 || v != 0; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[u] == timestamp_) return u;
      vis_[u] = timestamp_;
      u = st_[match_[u]];
      if (u != 0) u = st_[pa_[u]];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b] != 0) ++b;
    if (b > n_x_) ++n_x_;
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) g_[b][x].w = g_[x][b].w = 0;
    for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
    for (const int xs : flower_[b]) {
      for (int x = 1; x <= n_x_; ++x) {
        if (g_[b][x].w == 0 || e_delta(g_[xs][x]) < e_delta(g_[b][x])) {
          g_[b][x] = g_[xs][x];
          g_[x][b] = g_[x][xs];
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flower_from_[xs][x] != 0) flower_from_[b][x] = xs;
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    for (const int i : flower_[b]) set_st(i, i);
    const int xr = flower_from_[b][g_[b][pa_[b]].u];
    const int pr = get_pr(b, xr);
    auto& f = flower_[b];
    for (int i = 0; i < pr; i += 2) {
      const int xs = f[static_cast<std::size_t>(i)];
      const int xns = f[static_cast<std::size_t>(i + 1)];
      pa_[xs] = g_[xns][xs].u;
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < f.size(); ++i) {
      s_[f[i]] = -1;
      set_slack(f[i]);
    }
    st_[b] = 0;
  }

  bool on_found_edge(const Edge& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = slack_[nu] = 0;
      s_[nu] = 0;
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (lca == 0) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool matching() {
    std::fill(s_.begin(), s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
    q_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && match_[x] == 0) {
        pa_[x] = 0;
        s_[x] = 0;
        q_push(x);
      }
    }
    if (q_.empty()) return false;
    for (;;) {
      while (!q_.empty()) {
        const int u = q_.front();
        q_.pop_front();
        if (s_[st_[u]] == 1) continue;
        for (int v = 1; v <= n_; ++v) {
          if (g_[u][v].w > 0 && st_[u] != st_[v]) {
            if (e_delta(g_[u][v]) == 0) {
              if (on_found_edge(g_[u][v])) return true;
            } else {
              update_slack(u, st_[v]);
            }
          }
        }
      }
      std::int64_t d = std::numeric_limits<std::int64_t>::max();
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0) {
          if (s_[x] == -1) {
            d = std::min(d, e_delta(g_[slack_[x]][x]));
          } else if (s_[x] == 0) {
            d = std::min(d, e_delta(g_[slack_[x]][x]) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b) {
          if (s_[b] == 0) {
            lab_[b] += d * 2;
          } else if (s_[b] == 1) {
            lab_[b] -= d * 2;
          }
        }
      }
      q_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0 && st_[slack_[x]] != x &&
            e_delta(g_[slack_[x]][x]) == 0) {
          if (on_found_edge(g_[slack_[x]][x])) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
  }

  int n_;
  int max_v_;
  int n_x_ = 0;
  int timestamp_ = 0;
  std::vector<std::vector<Edge>> g_;
  std::vector<std::vector<int>> flower_from_;
  std::vector<std::vector<int>> flower_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_, slack_, st_, pa_, s_, vis_;
  std::deque<int> q_;
};

void validate_weights(const WeightMatrix& w) {
  const std::size_t n = w.size();
  if (n < 2 || n % 2 != 0) {
    throw std::invalid_argument(
        "max_weight_perfect_matching: need an even number of vertices >= 2");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i].size() != n) {
      throw std::invalid_argument(
          "max_weight_perfect_matching: matrix not square");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (w[i][j] < 0) {
        throw std::invalid_argument(
            "max_weight_perfect_matching: negative weight");
      }
      if (w[i][j] != w[j][i]) {
        throw std::invalid_argument(
            "max_weight_perfect_matching: matrix not symmetric");
      }
    }
  }
}

}  // namespace

MatchingResult max_weight_perfect_matching(const WeightMatrix& w) {
  validate_weights(w);
  const std::size_t n = w.size();

  // Force perfectness: add an offset so every edge is strictly positive and
  // a matching with more edges always beats one with fewer. The algorithm
  // maximises weight, so with offset >= (sum of all weights + 1) every
  // maximum-weight matching is perfect on a complete graph. Rescale first if
  // the raw counts are large enough to overflow the doubled arithmetic.
  std::int64_t sum = 0;
  std::int64_t maxw = 0;
  for (const auto& row : w) {
    for (std::int64_t x : row) {
      sum += x;
      maxw = std::max(maxw, x);
    }
  }
  WeightMatrix scaled = w;
  constexpr std::int64_t kSafeMax = std::int64_t{1} << 40;
  if (sum > kSafeMax) {
    const std::int64_t divisor = maxw / (kSafeMax / static_cast<std::int64_t>(n * n)) + 1;
    sum = 0;
    for (auto& row : scaled) {
      for (std::int64_t& x : row) {
        x /= divisor;
        sum += x;
      }
    }
  }
  const std::int64_t offset = sum + 1;
  WeightMatrix shifted = scaled;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) shifted[i][j] += offset;
    }
  }

  BlossomMatcher matcher(shifted);
  MatchingResult result;
  result.mate = matcher.solve();
  for (std::size_t v = 0; v < n; ++v) {
    if (result.mate[v] < 0) {
      throw std::logic_error(
          "max_weight_perfect_matching: matching is not perfect");
    }
    if (static_cast<std::size_t>(result.mate[v]) > v) {
      result.weight += w[v][static_cast<std::size_t>(result.mate[v])];
    }
  }
  return result;
}

MatchingResult max_weight_matching(const WeightMatrix& w) {
  const std::size_t n = w.size();
  if (n == 0) {
    throw std::invalid_argument("max_weight_matching: empty matrix");
  }
  if (n == 1) {
    if (w[0].size() != 1) {
      throw std::invalid_argument("max_weight_matching: matrix not square");
    }
    MatchingResult single;
    single.mate = {-1};
    return single;
  }
  if (n % 2 == 0) return max_weight_perfect_matching(w);

  // Odd size: pad with a zero-weight virtual vertex. The matcher's
  // perfectness offset applies uniformly, so the virtual vertex absorbs
  // whichever real vertex costs the matching least.
  WeightMatrix padded(n + 1, std::vector<std::int64_t>(n + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i].size() != n) {
      throw std::invalid_argument("max_weight_matching: matrix not square");
    }
    for (std::size_t j = 0; j < n; ++j) padded[i][j] = w[i][j];
  }
  const MatchingResult inner = max_weight_perfect_matching(padded);
  MatchingResult result;
  result.mate.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    // The partner of the virtual vertex stays unmatched (mate -1).
    if (inner.mate[v] >= 0 && static_cast<std::size_t>(inner.mate[v]) < n) {
      result.mate[v] = inner.mate[v];
    }
  }
  result.weight = inner.weight;  // virtual edges weigh zero
  return result;
}

}  // namespace tlbmap

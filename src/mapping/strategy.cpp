#include "mapping/strategy.hpp"

#include "mapping/hierarchical.hpp"
#include "mapping/multisection.hpp"

namespace tlbmap {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

bool edmonds_can_tile(const Topology& topology) {
  for (const int arity : topology.level_arities()) {
    if (!is_power_of_two(arity)) return false;
  }
  return true;
}

}  // namespace

std::optional<MappingStrategy> parse_mapping_strategy(std::string_view text) {
  if (text == "auto") return MappingStrategy::kAuto;
  if (text == "edmonds") return MappingStrategy::kEdmonds;
  if (text == "greedy") return MappingStrategy::kGreedy;
  if (text == "multisection") return MappingStrategy::kMultisection;
  return std::nullopt;
}

const char* to_string(MappingStrategy strategy) {
  switch (strategy) {
    case MappingStrategy::kAuto:
      return "auto";
    case MappingStrategy::kEdmonds:
      return "edmonds";
    case MappingStrategy::kGreedy:
      return "greedy";
    case MappingStrategy::kMultisection:
      return "multisection";
  }
  return "?";
}

MappingStrategy resolve_strategy(const MappingConfig& config,
                                 const CommMatrix& comm,
                                 const Topology& topology) {
  if (config.strategy != MappingStrategy::kAuto) return config.strategy;
  if (comm.size() >= config.auto_threshold) {
    return MappingStrategy::kMultisection;
  }
  if (!edmonds_can_tile(topology)) return MappingStrategy::kMultisection;
  return MappingStrategy::kEdmonds;
}

Mapping map_threads(const CommMatrix& comm, const Topology& topology,
                    const MappingConfig& config) {
  switch (resolve_strategy(config, comm, topology)) {
    case MappingStrategy::kEdmonds:
      return HierarchicalMapper(topology).map(comm);
    case MappingStrategy::kGreedy: {
      HierarchicalMapperConfig greedy;
      greedy.matcher = HierarchicalMapperConfig::Matcher::kGreedy;
      return HierarchicalMapper(topology, greedy).map(comm);
    }
    case MappingStrategy::kMultisection:
      return MultisectionMapper(topology).map(comm);
    case MappingStrategy::kAuto:
      break;  // unreachable: resolve_strategy never returns kAuto
  }
  return MultisectionMapper(topology).map(comm);
}

}  // namespace tlbmap

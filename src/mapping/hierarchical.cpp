#include "mapping/hierarchical.hpp"

#include <stdexcept>

#include "mapping/greedy.hpp"
#include "mapping/matching.hpp"

namespace tlbmap {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

/// The paper's H heuristic, generalised: weight between two groups is the
/// total communication between their members.
WeightMatrix group_weights(const CommMatrix& comm,
                           const std::vector<std::vector<ThreadId>>& groups) {
  const std::size_t g = groups.size();
  WeightMatrix w(g, std::vector<std::int64_t>(g, 0));
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = i + 1; j < g; ++j) {
      std::int64_t sum = 0;
      for (const ThreadId a : groups[i]) {
        for (const ThreadId b : groups[j]) {
          if (a >= 0 && b >= 0) {  // virtual padding threads are < 0
            sum += static_cast<std::int64_t>(comm.at(a, b));
          }
        }
      }
      w[i][j] = w[j][i] = sum;
    }
  }
  return w;
}

}  // namespace

HierarchicalMapper::HierarchicalMapper(const Topology& topology,
                                       HierarchicalMapperConfig config)
    : topology_(&topology), config_(config) {
  for (const int arity : topology.level_arities()) {
    if (!is_power_of_two(arity)) {
      throw std::invalid_argument(
          "HierarchicalMapper: level arities must be powers of two");
    }
  }
}

MatchingResult HierarchicalMapper::run_matching(const WeightMatrix& w) const {
  // Odd-tolerant entry points: group counts are even for power-of-two
  // topologies, but a degenerate matrix or future topology must degrade to
  // an unmatched group (carried forward unmerged) rather than a throw.
  if (config_.matcher == HierarchicalMapperConfig::Matcher::kGreedy) {
    return greedy_matching(w);
  }
  return max_weight_matching(w);
}

std::vector<std::vector<std::vector<ThreadId>>>
HierarchicalMapper::merge_levels(const CommMatrix& comm) const {
  const int num_threads = comm.size();
  const int num_cores = topology_->num_cores();
  if (num_threads > num_cores) {
    throw std::invalid_argument("HierarchicalMapper: more threads than cores");
  }

  // Singleton groups; pad with virtual threads (id -1) up to the core count
  // so the group structure always tiles the whole machine.
  std::vector<std::vector<ThreadId>> groups;
  groups.reserve(static_cast<std::size_t>(num_cores));
  for (ThreadId t = 0; t < num_threads; ++t) groups.push_back({t});
  for (int p = num_threads; p < num_cores; ++p) groups.push_back({kNoThread});

  std::vector<std::vector<std::vector<ThreadId>>> levels;
  // Merge until one group per socket.
  while (static_cast<int>(groups.size()) > topology_->num_sockets()) {
    const WeightMatrix w = group_weights(comm, groups);
    const MatchingResult match = run_matching(w);
    std::vector<std::vector<ThreadId>> merged;
    merged.reserve(groups.size() / 2);
    std::vector<bool> taken(groups.size(), false);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (taken[i]) continue;
      const int m = match.mate[i];
      if (m < 0 || static_cast<std::size_t>(m) >= groups.size() ||
          taken[static_cast<std::size_t>(m)]) {
        // Unmatched group (odd group count or degenerate matcher output):
        // carry it forward unmerged instead of indexing out of bounds.
        taken[i] = true;
        merged.push_back(groups[i]);
        continue;
      }
      const std::size_t j = static_cast<std::size_t>(m);
      taken[i] = taken[j] = true;
      std::vector<ThreadId> both = groups[i];
      both.insert(both.end(), groups[j].begin(), groups[j].end());
      merged.push_back(std::move(both));
    }
    if (merged.size() >= groups.size()) {
      // No merge happened — the matcher returned nothing usable. Bail out
      // with the current grouping rather than loop forever.
      levels.push_back(std::move(merged));
      break;
    }
    groups = std::move(merged);
    levels.push_back(groups);
  }
  if (levels.empty()) levels.push_back(groups);
  return levels;
}

Mapping HierarchicalMapper::map(const CommMatrix& comm) const {
  const auto levels = merge_levels(comm);
  const auto& socket_groups = levels.back();

  Mapping mapping(static_cast<std::size_t>(comm.size()), kNoCore);
  // Nested merges preserved contiguity: within a socket group, the first
  // cores_per_l2 members formed one L2 group, and so on. Reading members
  // off in order therefore lands each merge level on its hierarchy level.
  for (std::size_t s = 0; s < socket_groups.size(); ++s) {
    const auto& members = socket_groups[s];
    for (std::size_t i = 0; i < members.size(); ++i) {
      const ThreadId t = members[i];
      if (t == kNoThread) continue;  // virtual padding
      mapping[static_cast<std::size_t>(t)] =
          static_cast<CoreId>(s) * topology_->cores_per_socket() +
          static_cast<CoreId>(i);
    }
  }
  return mapping;
}

}  // namespace tlbmap

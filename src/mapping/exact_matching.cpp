#include "mapping/exact_matching.hpp"

#include <bit>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tlbmap {

MatchingResult exact_perfect_matching(const WeightMatrix& w) {
  const std::size_t n = w.size();
  if (n < 2 || n % 2 != 0) {
    throw std::invalid_argument(
        "exact_perfect_matching: need an even number of vertices >= 2");
  }
  if (n > kExactMatchingMaxVertices) {
    throw std::invalid_argument("exact_perfect_matching: too many vertices");
  }
  for (const auto& row : w) {
    if (row.size() != n) {
      throw std::invalid_argument("exact_perfect_matching: matrix not square");
    }
  }

  constexpr std::int64_t kUnset = std::numeric_limits<std::int64_t>::min();
  const std::size_t full = std::size_t{1} << n;
  // best[mask] = max weight of a perfect matching of the vertices in mask.
  std::vector<std::int64_t> best(full, kUnset);
  // choice[mask] = vertex paired with the lowest vertex of mask.
  std::vector<int> choice(full, -1);
  best[0] = 0;
  for (std::size_t mask = 1; mask < full; ++mask) {
    const int pc = std::popcount(mask);
    if (pc % 2 != 0) continue;
    const int lo = std::countr_zero(mask);
    const std::size_t without_lo = mask & (mask - 1);
    for (int v = lo + 1; v < static_cast<int>(n); ++v) {
      if ((mask >> v & 1) == 0) continue;
      const std::size_t rest = without_lo & ~(std::size_t{1} << v);
      if (best[rest] == kUnset) continue;
      const std::int64_t cand =
          best[rest] + w[static_cast<std::size_t>(lo)][static_cast<std::size_t>(v)];
      if (best[mask] == kUnset || cand > best[mask]) {
        best[mask] = cand;
        choice[mask] = v;
      }
    }
  }

  MatchingResult result;
  result.mate.assign(n, -1);
  result.weight = best[full - 1];
  std::size_t mask = full - 1;
  while (mask != 0) {
    const int lo = std::countr_zero(mask);
    const int v = choice[mask];
    result.mate[static_cast<std::size_t>(lo)] = v;
    result.mate[static_cast<std::size_t>(v)] = lo;
    mask &= ~(std::size_t{1} << lo);
    mask &= ~(std::size_t{1} << v);
  }
  return result;
}

}  // namespace tlbmap

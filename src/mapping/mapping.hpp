// Thread-to-core mappings: the type, validity checks, baseline generators
// (the paper's "OS" scheduler stand-in among them) and a communication-cost
// metric used to compare mapping quality independently of full simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/comm_matrix.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// mapping[t] = core that runs thread t.
using Mapping = std::vector<CoreId>;

/// True iff every thread is placed on a distinct, existing core.
bool is_valid_mapping(const Mapping& mapping, int num_cores);

/// Thread t on core t.
Mapping identity_mapping(int num_threads);

/// Uniformly random placement of threads onto distinct cores. This is the
/// evaluation's "OS" baseline: an unaware scheduler that lands threads on
/// arbitrary cores, differently on every run (hence the paper's high
/// OS-variance observations).
Mapping random_mapping(int num_threads, int num_cores, std::uint64_t seed);

/// Threads dealt across sockets round-robin (a load-balancing-only
/// scheduler: spreads without regard to communication).
Mapping round_robin_mapping(const Topology& topology, int num_threads);

/// Total weighted communication distance: sum over thread pairs of
/// comm(a, b) * hop_distance(core(a), core(b)). Lower is better; used by
/// tests and the matching-quality ablation.
double mapping_cost(const CommMatrix& comm, const Mapping& mapping,
                    const Topology& topology);

/// Human-readable "t0->c3 t1->c5 ..." string for reports.
std::string to_string(const Mapping& mapping);

}  // namespace tlbmap

// Hierarchical thread mapping (paper Sec. V-A).
//
// One matching pass pairs the threads that communicate most; when the
// machine has more hierarchy levels than "two cores per L2" (Harpertown
// also shares sockets), the matched pairs are collapsed into super-nodes
// whose pairwise weight is the paper's heuristic
//     H((x,y),(z,k)) = M(x,z) + M(x,k) + M(y,z) + M(y,k)
// (generalised here to groups of any size), and the matching re-runs.
// After enough passes the groups coincide with sockets and the nested merge
// order is read off onto the core tree.
//
// When the application has fewer threads than cores, virtual zero-
// communication threads pad the matrix and are dropped from the result.
#pragma once

#include <vector>

#include "detect/comm_matrix.hpp"
#include "mapping/mapping.hpp"
#include "mapping/matching.hpp"
#include "sim/topology.hpp"

namespace tlbmap {

struct HierarchicalMapperConfig {
  enum class Matcher {
    kBlossom,  ///< exact Edmonds matching (the paper's choice)
    kGreedy,   ///< greedy baseline, for the matching-quality ablation
  };
  Matcher matcher = Matcher::kBlossom;
};

class HierarchicalMapper {
 public:
  explicit HierarchicalMapper(const Topology& topology,
                              HierarchicalMapperConfig config = {});

  /// Maps comm.size() threads onto distinct cores. Requires
  /// comm.size() <= topology.num_cores() and power-of-two level arities.
  Mapping map(const CommMatrix& comm) const;

  /// The intermediate groupings, one entry per completed matching pass
  /// (exposed so tests can check that top communicating pairs merge first).
  std::vector<std::vector<std::vector<ThreadId>>> merge_levels(
      const CommMatrix& comm) const;

 private:
  MatchingResult run_matching(const WeightMatrix& w) const;

  const Topology* topology_;
  HierarchicalMapperConfig config_;
};

}  // namespace tlbmap

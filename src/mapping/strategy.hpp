// Mapping-strategy selection: one switch over the library's mappers, so
// the pipeline, the experiment suite and the CLI pick an algorithm by name
// instead of hard-coding HierarchicalMapper.
//
// kAuto is the default and encodes the scale crossover this layer exists
// for: the paper's exact Edmonds matching (O(N^3) per merge level) is the
// reference up to small machines, but at manycore thread counts recursive
// multisection delivers near-identical mapping_cost orders of magnitude
// faster (arXiv:2504.01726), so kAuto switches to it at auto_threshold
// threads — and whenever the topology's arities are not powers of two,
// which the matching-based mapper cannot tile at all.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "detect/comm_matrix.hpp"
#include "mapping/mapping.hpp"
#include "sim/topology.hpp"

namespace tlbmap {

enum class MappingStrategy {
  kAuto,          ///< Edmonds below auto_threshold threads, else multisection
  kEdmonds,       ///< hierarchical exact-matching mapper (paper Sec. V-A)
  kGreedy,        ///< hierarchical greedy-matching mapper (ablation)
  kMultisection,  ///< recursive multisection + local search
};

/// "auto" / "edmonds" / "greedy" / "multisection"; nullopt on anything else.
std::optional<MappingStrategy> parse_mapping_strategy(std::string_view text);
const char* to_string(MappingStrategy strategy);

struct MappingConfig {
  MappingStrategy strategy = MappingStrategy::kAuto;
  /// Thread count at (and above) which kAuto abandons Edmonds matching.
  int auto_threshold = 128;
};

/// The concrete algorithm `config` selects for this input — resolves kAuto
/// against the thread count and the topology's arities.
MappingStrategy resolve_strategy(const MappingConfig& config,
                                 const CommMatrix& comm,
                                 const Topology& topology);

/// Maps comm.size() threads onto distinct cores of `topology` with the
/// strategy `config` selects. Requires comm.size() <= topology.num_cores().
Mapping map_threads(const CommMatrix& comm, const Topology& topology,
                    const MappingConfig& config = {});

}  // namespace tlbmap

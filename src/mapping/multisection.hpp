// Hierarchical thread mapping by recursive multisection (after
// "Shared-Memory Hierarchical Process Mapping", arXiv:2504.01726).
//
// Instead of the paper's bottom-up Edmonds matching passes — exact but
// O(N^3) per level — the communication graph is split top-down along the
// topology tree: threads are k-way partitioned into socket groups, each
// socket group into L2 groups, and each L2 group is read off onto its
// cores. Every partition is a deterministic greedy seed (heaviest
// communicators first, each landing in the part it talks to most) followed
// by a swap/move local search over an incrementally maintained
// item-to-part affinity table, so one call costs O(N^2 * rounds) — at
// N >= 128 this beats Edmonds wall-clock by orders of magnitude while
// staying within a few percent of its mapping_cost (the differential tests
// in test_hierarchical pin both claims).
//
// On socket-mesh machines (Topology::socket_mesh_cols > 0) the socket
// groups are additionally placed onto the mesh greedily, heaviest-talking
// groups nearest each other; on fully-connected machines every placement
// is equivalent and the identity placement keeps results deterministic.
//
// Unlike HierarchicalMapper, arities need not be powers of two: the
// partitioner only needs per-part capacities.
#pragma once

#include "detect/comm_matrix.hpp"
#include "mapping/mapping.hpp"
#include "sim/topology.hpp"

namespace tlbmap {

struct MultisectionConfig {
  /// Max full local-search sweeps per partition call. Each sweep visits
  /// every item pair once and applies profitable swaps/moves immediately;
  /// the search stops early at the first sweep with no improvement.
  int refine_rounds = 8;
};

class MultisectionMapper {
 public:
  explicit MultisectionMapper(const Topology& topology,
                              MultisectionConfig config = {});

  /// Maps comm.size() threads onto distinct cores. Requires
  /// comm.size() <= topology.num_cores(). Deterministic.
  Mapping map(const CommMatrix& comm) const;

 private:
  const Topology* topology_;
  MultisectionConfig config_;
};

}  // namespace tlbmap

// Maximum-weight perfect matching on complete weighted graphs.
//
// This is the algorithmic core of the paper's mapping step (Sec. V-A,
// Figure 2): vertices are threads, edge weights are communication-matrix
// entries, and the matching selects the thread pairs that maximise the
// total communication placed on shared caches. Solved exactly with Edmonds'
// blossom algorithm in its O(N^3) primal-dual ("dual variables + slack")
// form. Perfectness on complete graphs is enforced by a uniform weight
// offset large enough that any perfect matching outweighs any non-perfect
// one; the offset cancels out of the reported weight.
#pragma once

#include <cstdint>
#include <vector>

namespace tlbmap {

/// Symmetric dense weight matrix; w[i][j] is the gain of pairing i with j.
using WeightMatrix = std::vector<std::vector<std::int64_t>>;

struct MatchingResult {
  /// mate[v] = partner of v (always valid for a perfect matching).
  std::vector<int> mate;
  /// Sum of w[v][mate[v]] over matched pairs (each pair once).
  std::int64_t weight = 0;

  /// Pairs (a, b) with a < b.
  std::vector<std::pair<int, int>> pairs() const;
};

/// Exact maximum-weight perfect matching.
///
/// Requirements: `w` is square with even size >= 2, symmetric, with
/// non-negative entries (communication counts). Throws std::invalid_argument
/// otherwise. An all-zero matrix is legal: the perfectness offset makes
/// every pairing equivalent, so the result is an arbitrary valid perfect
/// matching of weight 0.
MatchingResult max_weight_perfect_matching(const WeightMatrix& w);

/// Odd-tolerant variant (DESIGN.md Sec. 11): accepts any square symmetric
/// non-negative matrix with n >= 1. Even sizes delegate to
/// max_weight_perfect_matching; odd sizes are padded internally with one
/// zero-weight virtual vertex, so exactly one real vertex is left
/// unmatched (mate -1) — the one whose exclusion maximises the total
/// matched weight. n == 1 returns the single vertex unmatched. Never
/// asserts or dies on degenerate (all-zero) input.
MatchingResult max_weight_matching(const WeightMatrix& w);

}  // namespace tlbmap

// Maximum-weight perfect matching on complete weighted graphs.
//
// This is the algorithmic core of the paper's mapping step (Sec. V-A,
// Figure 2): vertices are threads, edge weights are communication-matrix
// entries, and the matching selects the thread pairs that maximise the
// total communication placed on shared caches. Solved exactly with Edmonds'
// blossom algorithm in its O(N^3) primal-dual ("dual variables + slack")
// form. Perfectness on complete graphs is enforced by a uniform weight
// offset large enough that any perfect matching outweighs any non-perfect
// one; the offset cancels out of the reported weight.
#pragma once

#include <cstdint>
#include <vector>

namespace tlbmap {

/// Symmetric dense weight matrix; w[i][j] is the gain of pairing i with j.
using WeightMatrix = std::vector<std::vector<std::int64_t>>;

struct MatchingResult {
  /// mate[v] = partner of v (always valid for a perfect matching).
  std::vector<int> mate;
  /// Sum of w[v][mate[v]] over matched pairs (each pair once).
  std::int64_t weight = 0;

  /// Pairs (a, b) with a < b.
  std::vector<std::pair<int, int>> pairs() const;
};

/// Exact maximum-weight perfect matching.
///
/// Requirements: `w` is square with even size >= 2, symmetric, with
/// non-negative entries (communication counts). Throws std::invalid_argument
/// otherwise.
MatchingResult max_weight_perfect_matching(const WeightMatrix& w);

}  // namespace tlbmap

#include "mapping/multisection.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tlbmap {

namespace {

/// One k-way partition subproblem over a subset of threads. Weights are
/// copied into a dense local matrix once (indices 0..n-1), so the greedy
/// seed and the local search never touch CommMatrix again.
class Partitioner {
 public:
  Partitioner(const CommMatrix& comm, const std::vector<ThreadId>& items,
              const std::vector<int>& capacity)
      : n_(static_cast<int>(items.size())),
        k_(static_cast<int>(capacity.size())),
        items_(items),
        rem_(capacity),
        w_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0),
        aff_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_), 0),
        part_of_(static_cast<std::size_t>(n_), -1) {
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        const auto c =
            static_cast<std::int64_t>(comm.at(items_[static_cast<std::size_t>(
                                                  i)],
                                              items_[static_cast<std::size_t>(
                                                  j)]));
        w(i, j) = c;
        w(j, i) = c;
      }
    }
  }

  std::vector<std::vector<ThreadId>> run(int refine_rounds) {
    seed();
    refine(refine_rounds);
    std::vector<std::vector<ThreadId>> groups(static_cast<std::size_t>(k_));
    for (int i = 0; i < n_; ++i) {  // ascending i keeps groups deterministic
      groups[static_cast<std::size_t>(part_of_[static_cast<std::size_t>(i)])]
          .push_back(items_[static_cast<std::size_t>(i)]);
    }
    return groups;
  }

 private:
  std::int64_t& w(int i, int j) {
    return w_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }
  std::int64_t& aff(int i, int p) {
    return aff_[static_cast<std::size_t>(i) * static_cast<std::size_t>(k_) +
                static_cast<std::size_t>(p)];
  }

  /// Greedy seed: heaviest communicators placed first, each into the part
  /// it already talks to most among those with spare capacity (lowest part
  /// index on ties — all deterministic).
  void seed() {
    std::vector<int> order(static_cast<std::size_t>(n_));
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::int64_t> row_sum(static_cast<std::size_t>(n_), 0);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        row_sum[static_cast<std::size_t>(i)] += w(i, j);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return row_sum[static_cast<std::size_t>(a)] >
             row_sum[static_cast<std::size_t>(b)];
    });
    for (const int i : order) {
      int best = -1;
      for (int p = 0; p < k_; ++p) {
        if (rem_[static_cast<std::size_t>(p)] <= 0) continue;
        if (best == -1 || aff(i, p) > aff(i, best)) best = p;
      }
      place(i, best);
    }
  }

  void place(int i, int p) {
    part_of_[static_cast<std::size_t>(i)] = p;
    --rem_[static_cast<std::size_t>(p)];
    for (int j = 0; j < n_; ++j) aff(j, p) += w(i, j);
  }

  /// First-improvement local search: each sweep tries every single move to
  /// a part with spare capacity and every cross-part pair swap, applying
  /// profitable ones immediately (the affinity table makes the gain O(1)
  /// to evaluate and O(n) to commit). Stops at the first quiet sweep.
  void refine(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      bool improved = false;
      for (int i = 0; i < n_; ++i) {
        const int pi = part_of_[static_cast<std::size_t>(i)];
        for (int p = 0; p < k_; ++p) {
          if (p == pi || rem_[static_cast<std::size_t>(p)] <= 0) continue;
          if (aff(i, p) - aff(i, pi) > 0) {
            move(i, p);
            improved = true;
            break;
          }
        }
      }
      for (int i = 0; i < n_; ++i) {
        for (int j = i + 1; j < n_; ++j) {
          const int pi = part_of_[static_cast<std::size_t>(i)];
          const int pj = part_of_[static_cast<std::size_t>(j)];
          if (pi == pj) continue;
          const std::int64_t gain = (aff(i, pj) - aff(i, pi)) +
                                    (aff(j, pi) - aff(j, pj)) - 2 * w(i, j);
          if (gain > 0) {
            swap_items(i, j);
            improved = true;
          }
        }
      }
      if (!improved) break;
    }
  }

  void move(int i, int to) {
    const int from = part_of_[static_cast<std::size_t>(i)];
    part_of_[static_cast<std::size_t>(i)] = to;
    ++rem_[static_cast<std::size_t>(from)];
    --rem_[static_cast<std::size_t>(to)];
    for (int j = 0; j < n_; ++j) {
      aff(j, from) -= w(i, j);
      aff(j, to) += w(i, j);
    }
  }

  void swap_items(int i, int j) {
    const int pi = part_of_[static_cast<std::size_t>(i)];
    const int pj = part_of_[static_cast<std::size_t>(j)];
    part_of_[static_cast<std::size_t>(i)] = pj;
    part_of_[static_cast<std::size_t>(j)] = pi;
    for (int z = 0; z < n_; ++z) {
      const std::int64_t delta = w(z, j) - w(z, i);
      aff(z, pi) += delta;
      aff(z, pj) -= delta;
    }
  }

  int n_;
  int k_;
  const std::vector<ThreadId>& items_;
  std::vector<int> rem_;  ///< spare capacity per part
  std::vector<std::int64_t> w_;
  std::vector<std::int64_t> aff_;  ///< aff[i][p] = sum of w(i, j in p)
  std::vector<int> part_of_;
};

std::vector<std::vector<ThreadId>> partition(const CommMatrix& comm,
                                             const std::vector<ThreadId>& items,
                                             int parts, int capacity,
                                             int refine_rounds) {
  Partitioner p(comm, items,
                std::vector<int>(static_cast<std::size_t>(parts), capacity));
  return p.run(refine_rounds);
}

/// Total communication between two groups of threads.
std::int64_t group_edge(const CommMatrix& comm,
                        const std::vector<ThreadId>& a,
                        const std::vector<ThreadId>& b) {
  std::int64_t sum = 0;
  for (const ThreadId x : a) {
    for (const ThreadId y : b) {
      sum += static_cast<std::int64_t>(comm.at(x, y));
    }
  }
  return sum;
}

/// Greedy placement of socket groups onto mesh sockets: groups in
/// descending order of external traffic, each onto the free socket with
/// the cheapest hop-weighted cost to the groups already placed (lowest
/// socket id on ties). On fully-connected machines every placement costs
/// the same, so the identity placement is returned unchanged.
std::vector<int> place_groups(const CommMatrix& comm, const Topology& topology,
                              const std::vector<std::vector<ThreadId>>& groups) {
  const int k = static_cast<int>(groups.size());
  std::vector<int> socket_of_group(static_cast<std::size_t>(k));
  std::iota(socket_of_group.begin(), socket_of_group.end(), 0);
  if (topology.socket_mesh_cols() == 0 || k <= 1) return socket_of_group;

  std::vector<std::vector<std::int64_t>> edge(
      static_cast<std::size_t>(k),
      std::vector<std::int64_t>(static_cast<std::size_t>(k), 0));
  std::vector<std::int64_t> external(static_cast<std::size_t>(k), 0);
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      const std::int64_t e =
          group_edge(comm, groups[static_cast<std::size_t>(a)],
                     groups[static_cast<std::size_t>(b)]);
      edge[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = e;
      edge[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = e;
      external[static_cast<std::size_t>(a)] += e;
      external[static_cast<std::size_t>(b)] += e;
    }
  }

  std::vector<int> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return external[static_cast<std::size_t>(a)] >
           external[static_cast<std::size_t>(b)];
  });

  std::vector<bool> socket_used(static_cast<std::size_t>(k), false);
  std::vector<int> placed;  // group ids already on the mesh
  for (const int g : order) {
    int best_socket = -1;
    std::int64_t best_cost = 0;
    for (int s = 0; s < k; ++s) {
      if (socket_used[static_cast<std::size_t>(s)]) continue;
      std::int64_t cost = 0;
      for (const int pg : placed) {
        cost += edge[static_cast<std::size_t>(g)][static_cast<std::size_t>(
                    pg)] *
                topology.socket_hops(
                    s, socket_of_group[static_cast<std::size_t>(pg)]);
      }
      if (best_socket == -1 || cost < best_cost) {
        best_socket = s;
        best_cost = cost;
      }
    }
    socket_of_group[static_cast<std::size_t>(g)] = best_socket;
    socket_used[static_cast<std::size_t>(best_socket)] = true;
    placed.push_back(g);
  }
  return socket_of_group;
}

}  // namespace

MultisectionMapper::MultisectionMapper(const Topology& topology,
                                       MultisectionConfig config)
    : topology_(&topology), config_(config) {
  if (config_.refine_rounds < 0) {
    throw std::invalid_argument("MultisectionMapper: negative refine_rounds");
  }
}

Mapping MultisectionMapper::map(const CommMatrix& comm) const {
  const int num_threads = comm.size();
  if (num_threads > topology_->num_cores()) {
    throw std::invalid_argument("MultisectionMapper: more threads than cores");
  }
  Mapping mapping(static_cast<std::size_t>(num_threads), kNoCore);
  if (num_threads == 0) return mapping;

  std::vector<ThreadId> all(static_cast<std::size_t>(num_threads));
  std::iota(all.begin(), all.end(), 0);

  // Top level: threads -> socket groups, then groups -> mesh positions.
  const auto socket_groups =
      partition(comm, all, topology_->num_sockets(),
                topology_->cores_per_socket(), config_.refine_rounds);
  const auto socket_of_group = place_groups(comm, *topology_, socket_groups);

  for (std::size_t g = 0; g < socket_groups.size(); ++g) {
    const auto& members = socket_groups[g];
    if (members.empty()) continue;
    const int socket = socket_of_group[g];
    // Middle level: this socket's threads -> L2 groups.
    const auto l2_groups = partition(comm, members, topology_->l2s_per_socket(),
                                     topology_->cores_per_l2(),
                                     config_.refine_rounds);
    for (std::size_t l = 0; l < l2_groups.size(); ++l) {
      // Leaf level: members of one L2 group onto its cores, in order (all
      // cores under one L2 are equidistant, so order is free).
      const CoreId base =
          static_cast<CoreId>(socket) * topology_->cores_per_socket() +
          static_cast<CoreId>(l) * topology_->cores_per_l2();
      for (std::size_t i = 0; i < l2_groups[l].size(); ++i) {
        mapping[static_cast<std::size_t>(l2_groups[l][i])] =
            base + static_cast<CoreId>(i);
      }
    }
  }
  return mapping;
}

}  // namespace tlbmap

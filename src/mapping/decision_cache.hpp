// Epoch-based mapping-decision cache with drift-triggered re-matching
// (DESIGN.md Sec. 16).
//
// A mapping service answering thousands of decision reads cannot run the
// matcher per read: a decision is cached with a monotonically increasing
// epoch and re-derived only when the communication matrix has *drifted* —
// its shape (cosine similarity against the matrix that produced the cached
// decision) moved past the configured threshold, or its health changed.
// Between drifts, reads are O(1) copies of the cached placement.
//
// Degradation follows the PR 4 rules: a degenerate matrix (empty/uniform)
// never overwrites a good cached decision — the stale placement is served
// flagged `degraded` until the signal returns, mirroring OnlineMapper's
// quality gate. A saturated matrix is surfaced as kSaturatedMatrix so the
// service can quarantine the tenant (pinned counters mean the tenant's
// signal can only rot from here).
#pragma once

#include <cstdint>

#include "detect/comm_matrix.hpp"
#include "core/expected.hpp"
#include "mapping/mapping.hpp"
#include "mapping/strategy.hpp"
#include "sim/topology.hpp"

namespace tlbmap {

struct DecisionCacheConfig {
  /// Re-match when cosine similarity between the current matrix and the
  /// matrix at the cached decision falls below this. 1.0 re-matches on any
  /// change; 0.0 never re-matches after the first decision.
  double drift_threshold = 0.90;

  /// Throws std::invalid_argument when the threshold is outside [0, 1] or
  /// not finite.
  void validate() const;
};

/// What a decision read returns: the placement plus enough provenance for
/// the caller to tell cached from fresh and healthy from degraded.
struct MappingDecision {
  Mapping mapping;
  std::uint64_t epoch = 0;  ///< bumps on every successful re-match
  bool degraded = false;    ///< served from a stale cache past degenerate input

  bool operator==(const MappingDecision&) const = default;
};

/// Serializable snapshot (service session checkpoints).
struct DecisionCacheState {
  bool valid = false;
  Mapping mapping;
  std::uint64_t epoch = 0;
  CommMatrix matched{1};  ///< the matrix that produced `mapping`

  bool operator==(const DecisionCacheState&) const = default;
};

class DecisionCache {
 public:
  explicit DecisionCache(DecisionCacheConfig config = {});

  const DecisionCacheConfig& config() const { return config_; }

  /// True when `matrix` warrants a re-match: no cached decision yet, or
  /// the shape drifted past the threshold. Degenerate matrices are never
  /// stale against a valid cache (they carry nothing to re-match on).
  bool stale(const CommMatrix& matrix) const;

  /// Serves the cached decision, re-matching first when stale. Outcomes:
  ///  - fresh or cached decision (epoch tells which);
  ///  - degraded decision: `matrix` is degenerate but a cached placement
  ///    exists — served as-is with degraded = true, epoch unchanged;
  ///  - kDegenerateMatrix: degenerate and nothing cached yet;
  ///  - kSaturatedMatrix: a counter pinned at the ceiling;
  ///  - kMappingFailure: the matcher threw (topology/matrix mismatch).
  Expected<MappingDecision> decide(const CommMatrix& matrix,
                                   const Topology& topology,
                                   const MappingConfig& mapping_config);

  bool has_decision() const { return valid_; }
  std::uint64_t epoch() const { return epoch_; }
  /// Successful re-matches, degraded serves, and drift re-match triggers
  /// (service metrics).
  std::uint64_t rematches() const { return rematches_; }
  std::uint64_t degraded_serves() const { return degraded_serves_; }

  /// Deterministic estimate of resident bytes (the retained matrix copy
  /// dominates) for the service's budget accounting.
  std::size_t memory_bytes() const;

  DecisionCacheState state() const;
  void restore(const DecisionCacheState& state);

 private:
  DecisionCacheConfig config_;
  bool valid_ = false;
  Mapping mapping_;
  std::uint64_t epoch_ = 0;
  CommMatrix matched_{1};
  std::uint64_t rematches_ = 0;
  std::uint64_t degraded_serves_ = 0;
};

}  // namespace tlbmap

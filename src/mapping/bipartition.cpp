#include "mapping/bipartition.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tlbmap {

namespace {

/// Communication between a thread and a group (virtual threads weigh 0).
std::int64_t affinity(const CommMatrix& comm, ThreadId t,
                      const std::vector<ThreadId>& group) {
  if (t < 0) return 0;
  std::int64_t sum = 0;
  for (const ThreadId o : group) {
    if (o >= 0 && o != t) sum += static_cast<std::int64_t>(comm.at(t, o));
  }
  return sum;
}

}  // namespace

std::pair<std::vector<ThreadId>, std::vector<ThreadId>> bisect_min_cut(
    const CommMatrix& comm, const std::vector<ThreadId>& members) {
  const std::size_t n = members.size();
  if (n % 2 != 0) {
    throw std::invalid_argument("bisect_min_cut: odd group size");
  }
  const std::size_t half = n / 2;

  // Greedy seed: grow side A from the heaviest pair's first endpoint,
  // repeatedly pulling the member with the highest affinity to A.
  std::vector<ThreadId> pool = members;
  std::vector<ThreadId> a;
  // Heaviest internal edge endpoint first (falls back to pool front).
  std::size_t seed = 0;
  std::int64_t best_w = -1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pool[i] < 0 || pool[j] < 0) continue;
      const auto w = static_cast<std::int64_t>(comm.at(pool[i], pool[j]));
      if (w > best_w) {
        best_w = w;
        seed = i;
      }
    }
  }
  a.push_back(pool[seed]);
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(seed));
  while (a.size() < half) {
    std::size_t best = 0;
    std::int64_t best_aff = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const std::int64_t aff = affinity(comm, pool[i], a);
      if (aff > best_aff) {
        best_aff = aff;
        best = i;
      }
    }
    a.push_back(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }
  std::vector<ThreadId> b = std::move(pool);

  // Kernighan-Lin style refinement: keep taking the best improving swap.
  auto cut_gain = [&](std::size_t i, std::size_t j) {
    // Gain of swapping a[i] <-> b[j]: moves each member's external affinity
    // inside and vice versa. Self-edge corrections cancel for distinct
    // members of opposite sides except the direct (a[i], b[j]) edge, which
    // stays external; count it twice to be exact.
    const ThreadId x = a[i], y = b[j];
    const std::int64_t direct =
        (x >= 0 && y >= 0) ? static_cast<std::int64_t>(comm.at(x, y)) : 0;
    const std::int64_t gain = (affinity(comm, x, b) - affinity(comm, x, a)) +
                              (affinity(comm, y, a) - affinity(comm, y, b)) -
                              2 * direct;
    return gain;
  };
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 32) {
    improved = false;
    ++rounds;
    std::size_t bi = 0, bj = 0;
    std::int64_t best_gain = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < b.size(); ++j) {
        const std::int64_t g = cut_gain(i, j);
        if (g > best_gain) {
          best_gain = g;
          bi = i;
          bj = j;
        }
      }
    }
    if (best_gain > 0) {
      std::swap(a[bi], b[bj]);
      improved = true;
    }
  }
  return {std::move(a), std::move(b)};
}

BipartitionMapper::BipartitionMapper(const Topology& topology)
    : topology_(&topology) {
  for (const int arity : topology.level_arities()) {
    if (arity <= 0 || (arity & (arity - 1)) != 0) {
      throw std::invalid_argument(
          "BipartitionMapper: level arities must be powers of two");
    }
  }
}

Mapping BipartitionMapper::map(const CommMatrix& comm) const {
  const int num_threads = comm.size();
  const int num_cores = topology_->num_cores();
  if (num_threads > num_cores) {
    throw std::invalid_argument("BipartitionMapper: more threads than cores");
  }

  // Pad with virtual threads so groups always tile the machine, then split
  // top-down: halve until groups have cores_per_l2 members. The recursion
  // order means the first split separates sockets, later splits separate
  // L2 groups — exactly the machine tree, since all arities are powers of
  // two.
  std::vector<std::vector<ThreadId>> groups;
  {
    std::vector<ThreadId> all;
    for (ThreadId t = 0; t < num_threads; ++t) all.push_back(t);
    for (int p = num_threads; p < num_cores; ++p) all.push_back(kNoThread);
    groups.push_back(std::move(all));
  }
  while (static_cast<int>(groups.front().size()) > topology_->cores_per_l2()) {
    std::vector<std::vector<ThreadId>> next;
    next.reserve(groups.size() * 2);
    for (const auto& group : groups) {
      auto [a, b] = bisect_min_cut(comm, group);
      next.push_back(std::move(a));
      next.push_back(std::move(b));
    }
    groups = std::move(next);
  }

  // groups[g] now holds the members of L2 group g, in machine order (the
  // split sequence preserved locality: children of one split stay adjacent).
  Mapping mapping(static_cast<std::size_t>(num_threads), kNoCore);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      const ThreadId t = groups[g][i];
      if (t == kNoThread) continue;
      mapping[static_cast<std::size_t>(t)] =
          static_cast<CoreId>(g) * topology_->cores_per_l2() +
          static_cast<CoreId>(i);
    }
  }
  return mapping;
}

}  // namespace tlbmap

#include "mapping/greedy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tlbmap {

MatchingResult greedy_perfect_matching(const WeightMatrix& w) {
  const std::size_t n = w.size();
  if (n < 2 || n % 2 != 0) {
    throw std::invalid_argument(
        "greedy_perfect_matching: need an even number of vertices >= 2");
  }
  struct Pair {
    int a, b;
    std::int64_t weight;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (int a = 0; a < static_cast<int>(n); ++a) {
    if (w[static_cast<std::size_t>(a)].size() != n) {
      throw std::invalid_argument("greedy_perfect_matching: not square");
    }
    for (int b = a + 1; b < static_cast<int>(n); ++b) {
      pairs.push_back(
          {a, b, w[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& x, const Pair& y) {
                     return x.weight > y.weight;
                   });
  MatchingResult result;
  result.mate.assign(n, -1);
  for (const Pair& p : pairs) {
    if (result.mate[static_cast<std::size_t>(p.a)] == -1 &&
        result.mate[static_cast<std::size_t>(p.b)] == -1) {
      result.mate[static_cast<std::size_t>(p.a)] = p.b;
      result.mate[static_cast<std::size_t>(p.b)] = p.a;
      result.weight += p.weight;
    }
  }
  return result;
}

MatchingResult greedy_matching(const WeightMatrix& w) {
  const std::size_t n = w.size();
  if (n == 0) {
    throw std::invalid_argument("greedy_matching: empty matrix");
  }
  if (n == 1) {
    if (w[0].size() != 1) {
      throw std::invalid_argument("greedy_matching: not square");
    }
    MatchingResult single;
    single.mate = {-1};
    return single;
  }
  if (n % 2 == 0) return greedy_perfect_matching(w);
  WeightMatrix padded(n + 1, std::vector<std::int64_t>(n + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i].size() != n) {
      throw std::invalid_argument("greedy_matching: not square");
    }
    for (std::size_t j = 0; j < n; ++j) padded[i][j] = w[i][j];
  }
  const MatchingResult inner = greedy_perfect_matching(padded);
  MatchingResult result;
  result.mate.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (inner.mate[v] >= 0 && static_cast<std::size_t>(inner.mate[v]) < n) {
      result.mate[v] = inner.mate[v];
    }
  }
  result.weight = inner.weight;
  return result;
}

}  // namespace tlbmap

#include "mapping/mapping.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>

namespace tlbmap {

bool is_valid_mapping(const Mapping& mapping, int num_cores) {
  std::vector<bool> used(static_cast<std::size_t>(num_cores), false);
  for (const CoreId core : mapping) {
    if (core < 0 || core >= num_cores) return false;
    if (used[static_cast<std::size_t>(core)]) return false;
    used[static_cast<std::size_t>(core)] = true;
  }
  return true;
}

Mapping identity_mapping(int num_threads) {
  Mapping m(static_cast<std::size_t>(num_threads));
  std::iota(m.begin(), m.end(), 0);
  return m;
}

Mapping random_mapping(int num_threads, int num_cores, std::uint64_t seed) {
  std::vector<CoreId> cores(static_cast<std::size_t>(num_cores));
  std::iota(cores.begin(), cores.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(cores.begin(), cores.end(), rng);
  cores.resize(static_cast<std::size_t>(num_threads));
  return cores;
}

Mapping round_robin_mapping(const Topology& topology, int num_threads) {
  Mapping m;
  m.reserve(static_cast<std::size_t>(num_threads));
  std::vector<int> next_in_socket(
      static_cast<std::size_t>(topology.num_sockets()), 0);
  int socket = 0;
  for (int t = 0; t < num_threads; ++t) {
    // Skip full sockets (only matters when threads < cores).
    while (next_in_socket[static_cast<std::size_t>(socket)] >=
           topology.cores_per_socket()) {
      socket = (socket + 1) % topology.num_sockets();
    }
    const int slot = next_in_socket[static_cast<std::size_t>(socket)]++;
    m.push_back(socket * topology.cores_per_socket() + slot);
    socket = (socket + 1) % topology.num_sockets();
  }
  return m;
}

double mapping_cost(const CommMatrix& comm, const Mapping& mapping,
                    const Topology& topology) {
  double cost = 0.0;
  const int n = comm.size();
  for (ThreadId a = 0; a < n; ++a) {
    for (ThreadId b = a + 1; b < n; ++b) {
      const int dist =
          topology.distance(mapping[static_cast<std::size_t>(a)],
                            mapping[static_cast<std::size_t>(b)]);
      cost += static_cast<double>(comm.at(a, b)) * static_cast<double>(dist);
    }
  }
  return cost;
}

std::string to_string(const Mapping& mapping) {
  std::ostringstream out;
  for (std::size_t t = 0; t < mapping.size(); ++t) {
    if (t != 0) out << ' ';
    out << 't' << t << "->c" << mapping[t];
  }
  return out.str();
}

}  // namespace tlbmap

// Greedy perfect matching baseline: sort all pairs by weight and take each
// pair whose endpoints are still free. A 1/2-approximation; exists to show
// what the exact Edmonds matching buys (ablation bench).
#pragma once

#include "mapping/matching.hpp"

namespace tlbmap {

/// Same contract as max_weight_perfect_matching (square, even N, symmetric).
MatchingResult greedy_perfect_matching(const WeightMatrix& w);

/// Odd-tolerant variant mirroring max_weight_matching: any square matrix
/// with n >= 1; odd sizes leave the greedily-last vertex unmatched
/// (mate -1). Never asserts or dies on all-zero input.
MatchingResult greedy_matching(const WeightMatrix& w);

}  // namespace tlbmap

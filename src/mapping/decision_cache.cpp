#include "mapping/decision_cache.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>
#include <string>

namespace tlbmap {

void DecisionCacheConfig::validate() const {
  if (!std::isfinite(drift_threshold) || drift_threshold < 0.0 ||
      drift_threshold > 1.0) {
    throw std::invalid_argument(
        "DecisionCache: drift_threshold must be in [0, 1]");
  }
}

DecisionCache::DecisionCache(DecisionCacheConfig config) : config_(config) {
  config_.validate();
}

bool DecisionCache::stale(const CommMatrix& matrix) const {
  if (!valid_) return true;
  const CommMatrix::Health health = matrix.health();
  if (health.degenerate()) return false;  // nothing better to match on
  if (matrix.size() != matched_.size()) return true;
  return CommMatrix::cosine_similarity(matrix, matched_) <
         config_.drift_threshold;
}

Expected<MappingDecision> DecisionCache::decide(
    const CommMatrix& matrix, const Topology& topology,
    const MappingConfig& mapping_config) {
  const CommMatrix::Health health = matrix.health();
  if (health.saturated) {
    return Error{ErrorCode::kSaturatedMatrix,
                 "decision cache: matrix counter pinned at ceiling ("
                 "signal can no longer improve)"};
  }
  if (health.degenerate()) {
    if (!valid_) {
      return Error{ErrorCode::kDegenerateMatrix,
                   std::string("decision cache: matrix is ") +
                       health.describe() + " and no decision is cached"};
    }
    ++degraded_serves_;
    return MappingDecision{mapping_, epoch_, /*degraded=*/true};
  }
  if (stale(matrix)) {
    try {
      mapping_ = map_threads(matrix, topology, mapping_config);
    } catch (const std::exception& e) {
      return Error{ErrorCode::kMappingFailure,
                   std::string("decision cache: matcher failed: ") +
                       e.what()};
    }
    matched_ = matrix;
    valid_ = true;
    ++epoch_;
    ++rematches_;
  }
  return MappingDecision{mapping_, epoch_, /*degraded=*/false};
}

std::size_t DecisionCache::memory_bytes() const {
  const std::size_t n = static_cast<std::size_t>(matched_.size());
  return n * n * sizeof(std::uint64_t) + mapping_.capacity() * sizeof(CoreId);
}

DecisionCacheState DecisionCache::state() const {
  DecisionCacheState s;
  s.valid = valid_;
  s.mapping = mapping_;
  s.epoch = epoch_;
  s.matched = matched_;
  return s;
}

void DecisionCache::restore(const DecisionCacheState& state) {
  valid_ = state.valid;
  mapping_ = state.mapping;
  epoch_ = state.epoch;
  matched_ = state.matched;
}

}  // namespace tlbmap

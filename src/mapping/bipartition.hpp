// Dual recursive bipartitioning mapper.
//
// The paper (Sec. V-A) notes that methods such as Scotch's dual recursive
// bipartitioning also solve the mapping problem well; it picks Edmonds
// matching instead. This is the bipartitioning alternative, implemented for
// comparison: recursively split the thread set to match the machine tree
// (sockets, then L2 groups, then cores), each split minimising the
// communication cut with a greedy seed plus Kernighan-Lin-style refinement.
//
// Exists as an ablation comparator for the hierarchical matcher; same
// contract as HierarchicalMapper::map.
#pragma once

#include "detect/comm_matrix.hpp"
#include "mapping/mapping.hpp"
#include "sim/topology.hpp"

namespace tlbmap {

class BipartitionMapper {
 public:
  explicit BipartitionMapper(const Topology& topology);

  /// Maps comm.size() threads onto distinct cores. Requires
  /// comm.size() <= topology.num_cores() and power-of-two level arities.
  Mapping map(const CommMatrix& comm) const;

 private:
  const Topology* topology_;
};

/// One balanced 2-way split of `members` minimising the communication cut
/// (exposed for tests). Returns the two halves, each of size
/// members.size()/2; members.size() must be even.
std::pair<std::vector<ThreadId>, std::vector<ThreadId>> bisect_min_cut(
    const CommMatrix& comm, const std::vector<ThreadId>& members);

}  // namespace tlbmap

// Self-profiling for runs: wall-clock + OS resource usage capture, span
// aggregation into flamegraph collapsed-stack text, and the run-manifest
// record every suite/CLI invocation can write next to its artifacts.
//
// The manifest answers "what produced this result, and what did it cost?"
// without re-running anything: config/seed/git provenance, wall and CPU
// time, peak RSS, and a per-phase attribution (wall microseconds from the
// tracer's spans, simulated cycles from the suite results) in the
// `stack;frames weight` format flamegraph.pl and speedscope ingest
// directly.
//
// Rendering only — the JSON string is written to disk by the caller via
// core/io's atomic_write_file, keeping tlbmap_obs free of IO dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace tlbmap::obs {

/// Deltas of getrusage(RUSAGE_SELF) over a profiled region. max_rss_kb is
/// the absolute peak (the kernel reports a high-water mark, not a delta).
struct ResourceUsage {
  double user_cpu_sec = 0.0;
  double sys_cpu_sec = 0.0;
  std::int64_t max_rss_kb = 0;
};

/// Stamps wall clock + rusage at construction; snapshot() reports the
/// deltas since then. Cheap enough to wrap every suite run.
class SelfProfiler {
 public:
  SelfProfiler();
  double wall_seconds() const;
  ResourceUsage snapshot() const;

 private:
  std::uint64_t start_wall_us_ = 0;
  double start_user_sec_ = 0.0;
  double start_sys_sec_ = 0.0;
};

/// The git describe string baked in at configure time ("unknown" when the
/// build did not run inside a git checkout).
const char* build_git_describe();

/// Collapsed-stack text from a tracer's completed spans: per recording
/// thread, nesting is reconstructed from timestamp/duration containment,
/// and each unique path emits one `a;b;c <self_us>` line (self time =
/// duration minus direct children), sorted by path. Feed to flamegraph.pl.
std::string collapsed_stacks(const Tracer& tracer);

/// One completed span with the wall time attributed to it alone.
struct SpanSelf {
  std::string name;
  std::uint64_t self_us = 0;
};

/// Per-span self time: each completed span's duration minus the wall time
/// covered by spans nested inside it (same recording thread, nesting by
/// timestamp/duration containment as in collapsed_stacks). Summing self_us
/// by name attributes every wall microsecond to exactly one span, so phase
/// totals add up to real elapsed time instead of double-counting parents of
/// nested spans. One entry per completed span, in close order per thread.
std::vector<SpanSelf> span_self_times(const Tracer& tracer);

/// Everything a run records about itself. Written as `manifest.json` by
/// run_suite (SuiteConfig::manifest_out) and tlbmap_cli (--manifest-out).
struct RunManifest {
  int schema_version = 1;
  std::string tool = "tlbmap";
  std::string command;              ///< e.g. "suite", "evaluate"
  std::string git_describe;         ///< build provenance
  std::string created_utc;          ///< ISO-8601, wall clock
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;    ///< suite_config_hash (0 outside suite)
  std::string config_summary;       ///< canonical config string (may be "")
  double wall_seconds = 0.0;
  ResourceUsage usage;
  bool degraded = false;
  bool interrupted = false;
  /// Per-phase wall attribution: name -> total microseconds.
  std::vector<std::pair<std::string, std::uint64_t>> phases;
  /// flamegraph.pl input, weight = wall microseconds (tracer spans).
  std::string collapsed_wall;
  /// flamegraph.pl input, weight = simulated cycles (deterministic).
  std::string collapsed_sim_cycles;
  /// Free-form provenance pairs (app list, repetitions, ...).
  std::vector<std::pair<std::string, std::string>> extra;

  /// Pretty-printed JSON object (trailing newline included).
  std::string to_json() const;
};

/// Current time as ISO-8601 UTC ("2026-08-08T12:34:56Z").
std::string utc_timestamp();

}  // namespace tlbmap::obs

#include "obs/selfprof.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <map>
#include <sstream>

#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define TLBMAP_HAVE_RUSAGE 1
#endif

namespace tlbmap::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RawUsage {
  double user_sec = 0.0;
  double sys_sec = 0.0;
  std::int64_t max_rss_kb = 0;
};

RawUsage raw_rusage() {
  RawUsage u;
#ifdef TLBMAP_HAVE_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    u.user_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                 static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    u.sys_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
#ifdef __APPLE__
    u.max_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes
#else
    u.max_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss);  // kilobytes
#endif
  }
#endif
  return u;
}

}  // namespace

SelfProfiler::SelfProfiler() : start_wall_us_(wall_now_us()) {
  const RawUsage u = raw_rusage();
  start_user_sec_ = u.user_sec;
  start_sys_sec_ = u.sys_sec;
}

double SelfProfiler::wall_seconds() const {
  return static_cast<double>(wall_now_us() - start_wall_us_) * 1e-6;
}

ResourceUsage SelfProfiler::snapshot() const {
  const RawUsage u = raw_rusage();
  ResourceUsage out;
  out.user_cpu_sec = u.user_sec - start_user_sec_;
  out.sys_cpu_sec = u.sys_sec - start_sys_sec_;
  out.max_rss_kb = u.max_rss_kb;
  return out;
}

const char* build_git_describe() {
#ifdef TLBMAP_GIT_DESCRIBE
  return TLBMAP_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string utc_timestamp() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

namespace {

// Rebuilds span nesting per recording thread from interval containment:
// spans sorted by (start, -duration) visit parents before their children,
// and a span starting past the stack top's end pops the finished
// ancestors. `close(name, path, self_us)` fires once per completed span
// with its self time (duration minus direct children).
template <typename CloseFn>
void walk_span_nesting(const Tracer& tracer, CloseFn&& close) {
  struct Frame {
    std::uint64_t end_us;
    std::string name;
    std::string path;
    std::uint64_t child_us = 0;  ///< wall time claimed by direct children
  };
  std::map<std::uint32_t, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (ev.kind == TraceEvent::Kind::kSpan) by_tid[ev.tid].push_back(ev);
  }
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                return a.dur_us > b.dur_us;
              });
    std::vector<Frame> stack;
    std::vector<std::uint64_t> start_us_stack;
    auto close_top = [&] {
      const Frame top = stack.back();
      const std::uint64_t start = start_us_stack.back();
      stack.pop_back();
      start_us_stack.pop_back();
      const std::uint64_t total = top.end_us - start;
      const std::uint64_t self =
          total > top.child_us ? total - top.child_us : 0;
      close(top.name, top.path, self);
      if (!stack.empty()) stack.back().child_us += total;
    };
    for (const TraceEvent& ev : spans) {
      while (!stack.empty() && ev.ts_us >= stack.back().end_us) close_top();
      Frame f;
      f.end_us = ev.ts_us + ev.dur_us;
      f.name = ev.name;
      f.path = stack.empty() ? ev.name : stack.back().path + ";" + ev.name;
      stack.push_back(std::move(f));
      start_us_stack.push_back(ev.ts_us);
    }
    while (!stack.empty()) close_top();
  }
}

}  // namespace

std::string collapsed_stacks(const Tracer& tracer) {
  std::map<std::string, std::uint64_t> weights;  // path -> self us
  walk_span_nesting(tracer, [&](const std::string& /*name*/,
                                const std::string& path,
                                std::uint64_t self_us) {
    weights[path] += self_us;
  });
  std::ostringstream out;
  for (const auto& [path, self_us] : weights) {
    out << path << ' ' << self_us << '\n';
  }
  return out.str();
}

std::vector<SpanSelf> span_self_times(const Tracer& tracer) {
  std::vector<SpanSelf> out;
  walk_span_nesting(tracer, [&](const std::string& name,
                                const std::string& /*path*/,
                                std::uint64_t self_us) {
    out.push_back({name, self_us});
  });
  return out;
}

std::string RunManifest::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << schema_version << ",\n";
  out << "  \"tool\": " << json_str(tool) << ",\n";
  out << "  \"command\": " << json_str(command) << ",\n";
  out << "  \"git_describe\": " << json_str(git_describe) << ",\n";
  out << "  \"created_utc\": " << json_str(created_utc) << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"config_hash\": " << config_hash << ",\n";
  out << "  \"config_summary\": " << json_str(config_summary) << ",\n";
  out << "  \"wall_seconds\": " << json_num(wall_seconds) << ",\n";
  out << "  \"rusage\": {\"user_cpu_sec\": " << json_num(usage.user_cpu_sec)
      << ", \"sys_cpu_sec\": " << json_num(usage.sys_cpu_sec)
      << ", \"max_rss_kb\": " << usage.max_rss_kb << "},\n";
  out << "  \"degraded\": " << (degraded ? "true" : "false") << ",\n";
  out << "  \"interrupted\": " << (interrupted ? "true" : "false") << ",\n";
  out << "  \"phases\": {";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out << ", ";
    out << json_str(phases[i].first) << ": " << phases[i].second;
  }
  out << "},\n";
  out << "  \"collapsed_wall\": " << json_str(collapsed_wall) << ",\n";
  out << "  \"collapsed_sim_cycles\": " << json_str(collapsed_sim_cycles)
      << ",\n";
  out << "  \"extra\": {";
  for (std::size_t i = 0; i < extra.size(); ++i) {
    if (i != 0) out << ", ";
    out << json_str(extra[i].first) << ": " << json_str(extra[i].second);
  }
  out << "}\n";
  out << "}\n";
  return out.str();
}

}  // namespace tlbmap::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"  // json_escape

namespace tlbmap::obs {

void Histogram::observe(double v) {
  if (v < 0.0) v = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  // bucket 0 holds [0,1); bucket i>0 holds [2^(i-1), 2^i).
  std::size_t bucket = 0;
  if (v >= 1.0) {
    bucket = static_cast<std::size_t>(std::ilogb(v)) + 1;
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

std::string MetricsRegistry::key_of(const std::string& name,
                                    const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, std::make_unique<Histogram>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

void MetricsRegistry::snapshot_matrix(
    std::string name, std::uint64_t epoch,
    std::vector<std::vector<std::uint64_t>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  matrices_.push_back({std::move(name), epoch, std::move(rows)});
}

std::vector<MatrixSnapshot> MetricsRegistry::matrix_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return matrices_;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

namespace {

std::string fmt_json_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

void write_header(std::ostream& out, const char* type,
                  const std::pair<std::string, Labels>& name_labels) {
  out << "{\"type\":\"" << type << "\",\"name\":\""
      << json_escape(name_labels.first) << "\",\"labels\":{";
  for (std::size_t i = 0; i < name_labels.second.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(name_labels.second[i].first) << "\":\""
        << json_escape(name_labels.second[i].second) << '"';
  }
  out << '}';
}

}  // namespace

void MetricsRegistry::export_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, c] : counters_) {
    write_header(out, "counter", names_.at(key));
    out << ",\"value\":" << c->value() << "}\n";
  }
  for (const auto& [key, g] : gauges_) {
    write_header(out, "gauge", names_.at(key));
    out << ",\"value\":" << fmt_json_double(g->value()) << "}\n";
  }
  for (const auto& [key, h] : histograms_) {
    write_header(out, "histogram", names_.at(key));
    out << ",\"count\":" << h->count()
        << ",\"sum\":" << fmt_json_double(h->sum())
        << ",\"min\":" << fmt_json_double(h->min())
        << ",\"max\":" << fmt_json_double(h->max())
        << ",\"mean\":" << fmt_json_double(h->mean()) << "}\n";
  }
  for (const MatrixSnapshot& m : matrices_) {
    out << "{\"type\":\"matrix\",\"name\":\"" << json_escape(m.name)
        << "\",\"epoch\":" << m.epoch << ",\"rows\":[";
    for (std::size_t r = 0; r < m.rows.size(); ++r) {
      if (r != 0) out << ',';
      out << '[';
      for (std::size_t c = 0; c < m.rows[r].size(); ++c) {
        if (c != 0) out << ',';
        out << m.rows[r][c];
      }
      out << ']';
    }
    out << "]}\n";
  }
}

}  // namespace tlbmap::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace tlbmap::obs {

void Histogram::observe(double v) {
  if (v < 0.0) v = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  // bucket 0 holds [0,1); bucket i>0 holds [2^(i-1), 2^i).
  std::size_t bucket = 0;
  if (v >= 1.0) {
    bucket = static_cast<std::size_t>(std::ilogb(v)) + 1;
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the q-th sample in [0, count]; walk the cumulative counts to
  // the bucket holding it, then interpolate linearly inside that bucket.
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      const double frac =
          (target - before) / static_cast<double>(buckets_[b]);
      // The observed extrema are tighter bounds than the bucket edges.
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
  }
  return max_;
}

std::string MetricsRegistry::key_of(const std::string& name,
                                    const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, std::make_unique<Histogram>()).first;
    names_.emplace(key, std::make_pair(name, labels));
  }
  return *it->second;
}

Gauge& MetricsRegistry::wallclock_gauge(const std::string& name,
                                        const Labels& labels) {
  Gauge& g = gauge(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  wallclock_keys_.insert(key_of(name, labels));
  return g;
}

Histogram& MetricsRegistry::wallclock_histogram(const std::string& name,
                                                const Labels& labels) {
  Histogram& h = histogram(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  wallclock_keys_.insert(key_of(name, labels));
  return h;
}

void MetricsRegistry::snapshot_matrix(
    std::string name, std::uint64_t epoch,
    std::vector<std::vector<std::uint64_t>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  matrices_.push_back({std::move(name), epoch, std::move(rows)});
}

std::vector<MatrixSnapshot> MetricsRegistry::matrix_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return matrices_;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::series_key(
    const std::pair<std::string, Labels>& nl) {
  if (nl.second.empty()) return nl.first;
  Labels sorted = nl.second;
  std::sort(sorted.begin(), sorted.end());
  std::string key = nl.first + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

void MetricsRegistry::sample_series(std::uint64_t sim_events,
                                    const std::string& reason) {
  SeriesSample sample;
  sample.sim_events = sim_events;
  sample.reason = reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, c] : counters_) {
      if (wallclock_keys_.count(key) != 0) continue;
      sample.counters.emplace_back(series_key(names_.at(key)), c->value());
    }
    for (const auto& [key, g] : gauges_) {
      if (wallclock_keys_.count(key) != 0) continue;
      sample.gauges.emplace_back(series_key(names_.at(key)), g->value());
    }
    for (const auto& [key, h] : histograms_) {
      if (wallclock_keys_.count(key) != 0) continue;
      SeriesHistogram sh;
      sh.count = h->count();
      sh.sum = h->sum();
      sh.min = h->min();
      sh.max = h->max();
      sh.mean = h->mean();
      sh.p50 = h->quantile(0.50);
      sh.p95 = h->quantile(0.95);
      sh.p99 = h->quantile(0.99);
      sample.histograms.emplace_back(series_key(names_.at(key)), sh);
    }
  }
  series_.append(std::move(sample));
  // Surface decimation as a counter so a bounded daemon run can report how
  // much history it shed. Updated after the append: the counter names the
  // drops visible to the *next* sample, keeping each sample a snapshot of
  // state strictly before its own trigger (and the stream deterministic).
  const std::uint64_t dropped = series_.dropped();
  if (dropped > 0) {
    Counter& shed = counter("obs.series_dropped");
    const std::uint64_t seen = shed.value();
    if (dropped > seen) shed.add(dropped - seen);
  }
}

namespace {

void write_header(std::ostream& out, const char* type,
                  const std::pair<std::string, Labels>& name_labels) {
  out << "{\"type\":\"" << type << "\",\"name\":\""
      << json_escape(name_labels.first) << "\",\"labels\":{";
  for (std::size_t i = 0; i < name_labels.second.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << json_escape(name_labels.second[i].first) << "\":\""
        << json_escape(name_labels.second[i].second) << '"';
  }
  out << '}';
}

}  // namespace

void MetricsRegistry::export_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, c] : counters_) {
    write_header(out, "counter", names_.at(key));
    out << ",\"value\":" << c->value() << "}\n";
  }
  for (const auto& [key, g] : gauges_) {
    write_header(out, "gauge", names_.at(key));
    out << ",\"value\":" << json_num(g->value()) << "}\n";
  }
  for (const auto& [key, h] : histograms_) {
    write_header(out, "histogram", names_.at(key));
    out << ",\"count\":" << h->count() << ",\"sum\":" << json_num(h->sum())
        << ",\"min\":" << json_num(h->min())
        << ",\"max\":" << json_num(h->max())
        << ",\"mean\":" << json_num(h->mean())
        << ",\"p50\":" << json_num(h->quantile(0.50))
        << ",\"p95\":" << json_num(h->quantile(0.95))
        << ",\"p99\":" << json_num(h->quantile(0.99)) << "}\n";
  }
  for (const MatrixSnapshot& m : matrices_) {
    out << "{\"type\":\"matrix\",\"name\":\"" << json_escape(m.name)
        << "\",\"epoch\":" << m.epoch << ",\"rows\":[";
    for (std::size_t r = 0; r < m.rows.size(); ++r) {
      if (r != 0) out << ',';
      out << '[';
      for (std::size_t c = 0; c < m.rows[r].size(); ++c) {
        if (c != 0) out << ',';
        out << m.rows[r][c];
      }
      out << ']';
    }
    out << "]}\n";
  }
  series_.export_jsonl(out);
}

}  // namespace tlbmap::obs

// The one JSON-emission helper set every exporter in the tree routes
// through: the tracer (Chrome trace / JSONL), the metrics registry, the
// time-series sink, run manifests and hand-built span args. Centralising
// the escaping means a metric label, workload name or error message
// containing quotes, backslashes or control characters can never produce
// an invalid artifact, whichever emitter it travels through.
//
// Emission only — parsing (needed by tlbmap_benchdiff) lives in
// core/benchdiff.cpp, which has different dependencies and error handling.
#pragma once

#include <string>

namespace tlbmap::obs {

/// Escapes a string for embedding inside a JSON string literal (no
/// surrounding quotes): ", \, and control characters below 0x20.
std::string json_escape(const std::string& s);

/// A complete JSON string literal: quotes around json_escape(s).
std::string json_str(const std::string& s);

/// A JSON-safe number: finite doubles print with 12 significant digits,
/// NaN/Inf (not representable in JSON) degrade to 0. Integral values print
/// without an exponent where possible.
std::string json_num(double v);

}  // namespace tlbmap::obs

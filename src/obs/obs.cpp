#include "obs/obs.hpp"

namespace tlbmap::obs {

std::optional<ObsLevel> parse_obs_level(std::string_view text) {
  if (text == "off") return ObsLevel::kOff;
  if (text == "phases") return ObsLevel::kPhases;
  if (text == "full") return ObsLevel::kFull;
  return std::nullopt;
}

const char* to_string(ObsLevel level) {
  switch (level) {
    case ObsLevel::kOff: return "off";
    case ObsLevel::kPhases: return "phases";
    case ObsLevel::kFull: return "full";
  }
  return "off";
}

}  // namespace tlbmap::obs

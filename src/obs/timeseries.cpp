#include "obs/timeseries.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace tlbmap::obs {

void TimeSeries::append(SeriesSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  sample.index = next_index_++;
  if (capacity_ > 0 && sample.index % stride_ != 0) {
    ++dropped_;
    return;
  }
  samples_.push_back(std::move(sample));
  if (capacity_ > 0 && samples_.size() >= capacity_) {
    // Halve by keeping every second stored sample (those whose index is a
    // multiple of the doubled stride), so retention stays evenly spaced
    // over the whole history instead of privileging the most recent tail.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      if (samples_[i].index % (stride_ * 2) == 0) {
        if (kept != i) samples_[kept] = std::move(samples_[i]);
        ++kept;
      } else {
        ++dropped_;
      }
    }
    samples_.resize(kept);
    stride_ *= 2;
  }
}

void TimeSeries::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

std::size_t TimeSeries::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t TimeSeries::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::vector<SeriesSample> TimeSeries::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void TimeSeries::export_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SeriesSample& s : samples_) {
    out << "{\"type\":\"series\",\"sample\":" << s.index
        << ",\"sim_events\":" << s.sim_events
        << ",\"reason\":" << json_str(s.reason) << ",\"counters\":{";
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
      if (i != 0) out << ',';
      out << json_str(s.counters[i].first) << ':' << s.counters[i].second;
    }
    out << "},\"gauges\":{";
    for (std::size_t i = 0; i < s.gauges.size(); ++i) {
      if (i != 0) out << ',';
      out << json_str(s.gauges[i].first) << ':' << json_num(s.gauges[i].second);
    }
    out << "},\"histograms\":{";
    for (std::size_t i = 0; i < s.histograms.size(); ++i) {
      if (i != 0) out << ',';
      const SeriesHistogram& h = s.histograms[i].second;
      out << json_str(s.histograms[i].first) << ":{\"count\":" << h.count
          << ",\"sum\":" << json_num(h.sum) << ",\"min\":" << json_num(h.min)
          << ",\"max\":" << json_num(h.max)
          << ",\"mean\":" << json_num(h.mean)
          << ",\"p50\":" << json_num(h.p50)
          << ",\"p95\":" << json_num(h.p95)
          << ",\"p99\":" << json_num(h.p99) << '}';
    }
    out << "}}\n";
  }
}

}  // namespace tlbmap::obs

#include "obs/timeseries.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace tlbmap::obs {

void TimeSeries::append(SeriesSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  sample.index = samples_.size();
  samples_.push_back(std::move(sample));
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::vector<SeriesSample> TimeSeries::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void TimeSeries::export_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SeriesSample& s : samples_) {
    out << "{\"type\":\"series\",\"sample\":" << s.index
        << ",\"sim_events\":" << s.sim_events
        << ",\"reason\":" << json_str(s.reason) << ",\"counters\":{";
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
      if (i != 0) out << ',';
      out << json_str(s.counters[i].first) << ':' << s.counters[i].second;
    }
    out << "},\"gauges\":{";
    for (std::size_t i = 0; i < s.gauges.size(); ++i) {
      if (i != 0) out << ',';
      out << json_str(s.gauges[i].first) << ':' << json_num(s.gauges[i].second);
    }
    out << "},\"histograms\":{";
    for (std::size_t i = 0; i < s.histograms.size(); ++i) {
      if (i != 0) out << ',';
      const SeriesHistogram& h = s.histograms[i].second;
      out << json_str(s.histograms[i].first) << ":{\"count\":" << h.count
          << ",\"sum\":" << json_num(h.sum) << ",\"min\":" << json_num(h.min)
          << ",\"max\":" << json_num(h.max)
          << ",\"mean\":" << json_num(h.mean)
          << ",\"p50\":" << json_num(h.p50)
          << ",\"p95\":" << json_num(h.p95)
          << ",\"p99\":" << json_num(h.p99) << '}';
    }
    out << "}}\n";
  }
}

}  // namespace tlbmap::obs

#include "obs/json.hpp"

#include <cmath>
#include <sstream>

namespace tlbmap::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& s) {
  return '"' + json_escape(s) + '"';
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace tlbmap::obs

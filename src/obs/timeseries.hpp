// Epoch-bucketed time-series sink for the metrics registry.
//
// The registry's JSONL export captures end-of-run totals; the paper's core
// claims (detection accuracy, invalidations, overhead — Figs. 6-9) are
// longitudinal, so the interesting signal is how those totals *evolve*.
// A TimeSeries holds an append-only sequence of samples, each a full
// snapshot of the registry's counters, gauges and histogram summaries,
// tagged with the simulated-event count that triggered it and a reason
// ("interval" for the every-N-events trigger inside Machine::try_run,
// "phase:<name>" at pipeline/suite phase boundaries).
//
// Determinism contract: samples carry no wall-clock fields, and metrics
// registered through the registry's wallclock_* helpers are excluded, so a
// single-pipeline run with a fixed seed and fixed interval exports a
// byte-identical series (tested). Suite runs with parallel workers
// interleave samples from concurrent tasks; the sample index stays
// monotonic but the ordering is scheduling-dependent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tlbmap::obs {

/// Percentile-bearing histogram summary captured into a sample.
struct SeriesHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One snapshot of the registry. Metric keys are "name" or
/// "name{k=v,k=v}" with labels sorted, so a key is stable across runs.
struct SeriesSample {
  std::uint64_t index = 0;       ///< monotonic sample number (assigned)
  std::uint64_t sim_events = 0;  ///< simulated events at the trigger
  std::string reason;            ///< "interval" | "phase:<name>" | ...
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, SeriesHistogram>> histograms;
};

class TimeSeries {
 public:
  /// Appends a sample, assigning the next monotonic index. Thread-safe.
  /// With a capacity set, the sample may be decimated away instead of
  /// stored (the index is still consumed, so stored indices reveal the
  /// gaps); dropped() counts the casualties.
  void append(SeriesSample sample);

  /// Bounds the stored sample count for daemon-length runs (DESIGN.md
  /// Sec. 16): 0 (default) stores every sample forever. With capacity N,
  /// reaching N stored samples halves them by dropping every second one
  /// and doubles the keep-stride for future appends, so memory stays
  /// O(N) while the retained samples remain evenly spaced over the whole
  /// run's history — a week-long serve run keeps its shape, not just its
  /// tail. Deterministic: the kept set is a pure function of the append
  /// sequence and the capacity.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  /// Samples decimated away so far (exported as obs.series_dropped).
  std::uint64_t dropped() const;

  std::size_t size() const;
  std::vector<SeriesSample> samples() const;

  /// One {"type":"series",...} JSON object per line — the stream the
  /// registry's export_jsonl interleaves after the scalar metrics.
  void export_jsonl(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<SeriesSample> samples_;
  std::size_t capacity_ = 0;     ///< 0 = unbounded
  std::uint64_t next_index_ = 0; ///< appended samples (stored + dropped)
  std::uint64_t stride_ = 1;     ///< store every stride_-th appended sample
  std::uint64_t dropped_ = 0;
};

}  // namespace tlbmap::obs

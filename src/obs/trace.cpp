#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <ostream>

namespace tlbmap::obs {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Dense per-thread id in first-use order — stable across a process, and
/// far more readable in a trace viewer than hashed std::thread::id values.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void Tracer::set_clock(std::function<std::uint64_t()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

std::uint64_t Tracer::now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : steady_now_us();
}

void Tracer::record(TraceEvent ev) {
  ev.tid = current_tid();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[static_cast<std::size_t>(head_ % capacity_)] = std::move(ev);
  }
  ++head_;
}

void Tracer::record_span(std::string name, std::string category,
                         std::uint64_t ts_us, std::uint64_t dur_us,
                         std::string args_json) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args_json = std::move(args_json);
  record(std::move(ev));
}

void Tracer::record_instant(std::string name, std::string category,
                            std::string args_json) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts_us = now_us();
  ev.args_json = std::move(args_json);
  record(std::move(ev));
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ - ring_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: the oldest event sits at head_ % capacity_.
    const std::size_t start = static_cast<std::size_t>(head_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

namespace {

void write_event_body(std::ostream& out, const TraceEvent& ev) {
  out << "\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
      << json_escape(ev.category) << "\",\"ph\":\""
      << (ev.kind == TraceEvent::Kind::kSpan ? 'X' : 'i')
      << "\",\"ts\":" << ev.ts_us;
  if (ev.kind == TraceEvent::Kind::kSpan) {
    out << ",\"dur\":" << ev.dur_us;
  } else {
    out << ",\"s\":\"t\"";  // instant scope: thread
  }
  out << ",\"pid\":1,\"tid\":" << ev.tid;
  if (!ev.args_json.empty()) out << ",\"args\":{" << ev.args_json << '}';
}

}  // namespace

void Tracer::export_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out << ',';
    out << "\n{";
    write_event_body(out, events[i]);
    out << '}';
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& ev : snapshot()) {
    out << '{';
    write_event_body(out, ev);
    out << "}\n";
  }
}

TraceSpan::TraceSpan(Tracer* tracer, std::string name, std::string category,
                     std::string args_json)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      args_json_(std::move(args_json)) {
  if (tracer_ != nullptr) start_us_ = tracer_->now_us();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end = tracer_->now_us();
  tracer_->record_span(std::move(name_), std::move(category_), start_us_,
                       end - start_us_, std::move(args_json_));
}

void TraceSpan::set_args(std::string args_json) {
  args_json_ = std::move(args_json);
}

std::uint64_t TraceSpan::elapsed_us() const {
  if (tracer_ == nullptr) return 0;
  return tracer_->now_us() - start_us_;
}

}  // namespace tlbmap::obs

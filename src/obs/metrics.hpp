// Registry of named, labeled metrics: counters (monotonic uint64), gauges
// (last-write-wins double), histograms (count/sum/min/max plus log2
// buckets), and communication-matrix snapshots for heatmap dumps.
//
// Lookup (`counter()` / `gauge()` / `histogram()`) takes a registry-wide
// mutex, but the returned references stay valid for the registry's lifetime,
// so hot paths resolve once and update lock-free afterwards:
//
//   obs::Counter& searches = registry.counter("detector.searches",
//                                             {{"mechanism", "SM"}});
//   ...per event...
//   searches.add();
//
// The whole registry exports as JSONL, one metric per line.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.hpp"

namespace tlbmap::obs {

/// Label set attached to a metric, e.g. {{"app", "SP"}, {"phase", "detect"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative samples with power-of-two buckets:
/// bucket i counts samples in [2^(i-1), 2^i) (bucket 0: [0, 1)).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;
  std::array<std::uint64_t, kBuckets> buckets() const;

  /// Approximate quantile (q in [0,1]) from the log2 buckets: the bucket
  /// holding the q-th sample is found by cumulative count, and the value is
  /// linearly interpolated within that bucket's [lo, hi) range, clamped to
  /// the observed [min, max]. Exact for 0 and 1; 0 when empty.
  double quantile(double q) const;

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// One captured communication matrix (or any square count matrix), tagged
/// with the epoch that produced it (detector sweep index, remap decision,
/// end-of-run, ...).
struct MatrixSnapshot {
  std::string name;
  std::uint64_t epoch = 0;
  std::vector<std::vector<std::uint64_t>> rows;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Wall-clock variants: identical to gauge()/histogram() but the metric
  /// is tagged volatile and excluded from time-series samples, which must
  /// stay deterministic for a fixed seed (self-measurement values — wall
  /// time, events/sec, RSS — differ across runs; they belong in the run
  /// manifest, not the series stream). The full JSONL export still
  /// includes them.
  Gauge& wallclock_gauge(const std::string& name, const Labels& labels = {});
  Histogram& wallclock_histogram(const std::string& name,
                                 const Labels& labels = {});

  void snapshot_matrix(std::string name, std::uint64_t epoch,
                       std::vector<std::vector<std::uint64_t>> rows);
  std::vector<MatrixSnapshot> matrix_snapshots() const;

  /// Reads a previously registered counter's value; 0 if absent (lets tests
  /// and reports probe without creating the metric).
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;

  /// Captures every registered counter/gauge/histogram (minus wall-clock-
  /// tagged ones) into the time-series sink as one sample tagged with the
  /// triggering simulated-event count and a reason string. Thread-safe;
  /// Machine::try_run calls this every RunConfig::metrics_interval_events
  /// events, the pipeline and suite at phase boundaries.
  void sample_series(std::uint64_t sim_events, const std::string& reason);

  /// The epoch-bucketed sample stream (empty until sample_series runs).
  const TimeSeries& series() const { return series_; }

  /// Caps the stored series samples for daemon-length runs (DESIGN.md
  /// Sec. 16): past the cap, older samples are decimated (evenly, not
  /// tail-biased) and the obs.series_dropped counter tracks how many were
  /// shed. 0 (default) = unbounded, the batch-suite behaviour.
  void set_series_capacity(std::size_t capacity) {
    series_.set_capacity(capacity);
  }

  /// One JSON object per line:
  ///   {"type":"counter","name":...,"labels":{...},"value":N}
  ///   {"type":"gauge",...,"value":X}
  ///   {"type":"histogram",...,"count":N,"sum":X,"min":X,"max":X,"mean":X,
  ///    "p50":X,"p95":X,"p99":X}
  ///   {"type":"matrix","name":...,"epoch":N,"rows":[[...],...]}
  ///   {"type":"series","sample":N,"sim_events":N,"reason":...,
  ///    "counters":{...},"gauges":{...},"histograms":{...}}
  void export_jsonl(std::ostream& out) const;

 private:
  /// name + serialized labels; labels are sorted so order never matters.
  static std::string key_of(const std::string& name, const Labels& labels);

  /// Stable series key: "name" or "name{k=v,k=v}" with labels sorted.
  static std::string series_key(const std::pair<std::string, Labels>& nl);

  mutable std::mutex mu_;
  // node-based maps: references handed out stay stable under later inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::pair<std::string, Labels>> names_;
  std::set<std::string> wallclock_keys_;  ///< excluded from series samples
  std::vector<MatrixSnapshot> matrices_;
  TimeSeries series_;
};

}  // namespace tlbmap::obs

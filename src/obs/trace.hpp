// Low-overhead structured event tracer.
//
// Events (completed spans and instants) land in a fixed-capacity ring
// buffer: recording never allocates past construction and never blocks on
// I/O, so the tracer is safe to leave attached to hot paths. When the ring
// wraps, the oldest events are overwritten; `dropped()` says how many.
// Recording is thread-safe. Exports target chrome://tracing / Perfetto
// (Chrome "traceEvents" JSON) and line-oriented JSONL for ad-hoc tooling.
//
// The clock is injectable (microsecond ticks) so tests can record
// deterministic timestamps; the default is steady_clock wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"  // every trace emitter escapes through json_escape

namespace tlbmap::obs {

/// One recorded event. `args_json` is a preformatted JSON object body
/// (without the braces), e.g. `"app":"SP","searches":12` — empty for none.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSpan,     ///< completed duration event (Chrome ph "X")
    kInstant,  ///< point-in-time marker (Chrome ph "i")
  };

  Kind kind = Kind::kInstant;
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start timestamp, microseconds
  std::uint64_t dur_us = 0;  ///< span duration (0 for instants)
  std::uint32_t tid = 0;     ///< recording thread (dense, first-use order)
  std::string args_json;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  /// Replaces the timestamp source (microsecond ticks). Pass nullptr to
  /// restore the default steady_clock.
  void set_clock(std::function<std::uint64_t()> clock);
  std::uint64_t now_us() const;

  void record_span(std::string name, std::string category,
                   std::uint64_t ts_us, std::uint64_t dur_us,
                   std::string args_json = {});
  void record_instant(std::string name, std::string category,
                      std::string args_json = {});

  std::size_t capacity() const { return capacity_; }
  /// Events recorded over the tracer's lifetime (including overwritten).
  std::uint64_t recorded() const;
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events lost to ring wraparound: recorded() - size().
  std::uint64_t dropped() const;

  /// Copies the buffered events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto.
  void export_chrome_trace(std::ostream& out) const;
  /// One JSON object per line, same fields as the Chrome export.
  void export_jsonl(std::ostream& out) const;

 private:
  void record(TraceEvent ev);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t head_ = 0;  ///< total events ever recorded
  std::function<std::uint64_t()> clock_;
};

/// RAII span: construction stamps the start, destruction records the
/// completed event. A null tracer makes every operation a no-op, so call
/// sites stay branch-free:
///
///   obs::TraceSpan span(tracer_or_null, "pipeline.detect", "phase");
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string name, std::string category,
            std::string args_json = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Replaces the args recorded at destruction (results known only at the
  /// end of the scope, e.g. counters collected by the spanned work).
  void set_args(std::string args_json);

  /// Microseconds since construction (0 without a tracer).
  std::uint64_t elapsed_us() const;

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::string args_json_;
  std::uint64_t start_us_ = 0;
};

}  // namespace tlbmap::obs

// Bundles the tracer and metrics registry behind a verbosity level, as one
// context object that is threaded (by pointer) through the pipeline, the
// machine and the detectors. A null context — the default everywhere — or
// level kOff keeps every hook to a null/level check, so instrumented code
// costs nothing when observability is not requested.
//
//   obs::ObsContext ctx;
//   ctx.level = obs::ObsLevel::kPhases;
//   pipeline.set_observability(&ctx);
//   ...run...
//   ctx.tracer.export_chrome_trace(file);   // open in Perfetto
//   ctx.metrics.export_jsonl(file);
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tlbmap::obs {

enum class ObsLevel {
  kOff,     ///< record nothing (hooks reduce to one comparison)
  kPhases,  ///< pipeline phase spans, run counters, end-of-run snapshots
  kFull,    ///< + per-search detector events and per-epoch matrix snapshots
};

/// "off" / "phases" / "full"; nullopt on anything else.
std::optional<ObsLevel> parse_obs_level(std::string_view text);
const char* to_string(ObsLevel level);

struct ObsContext {
  ObsLevel level = ObsLevel::kPhases;
  Tracer tracer;
  MetricsRegistry metrics;

  bool phases() const { return level >= ObsLevel::kPhases; }
  bool full() const { return level >= ObsLevel::kFull; }
};

/// The tracer of `obs` when it exists and records at `min` or finer, else
/// nullptr — feeds TraceSpan's null-object path:
///
///   obs::TraceSpan span(obs::tracer_at(obs_, obs::ObsLevel::kPhases),
///                       "pipeline.map", "phase");
inline Tracer* tracer_at(ObsContext* obs, ObsLevel min) {
  return (obs != nullptr && obs->level >= min) ? &obs->tracer : nullptr;
}

/// Matching helper for metrics-side hooks.
inline MetricsRegistry* metrics_at(ObsContext* obs, ObsLevel min) {
  return (obs != nullptr && obs->level >= min) ? &obs->metrics : nullptr;
}

}  // namespace tlbmap::obs

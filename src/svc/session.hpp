// One tenant of the mapping service (DESIGN.md Sec. 16).
//
// A session owns everything a tenant can corrupt, stall or bloat: one
// TraceStreamDecoder per client thread (whose internal buffer *is* the
// bounded ingest queue), an incremental StreamDetector, a mapping
// DecisionCache, and the retry/quarantine state machine around them.
// Nothing in here is shared across sessions — fault isolation falls out of
// ownership, and the service-level differential test (one tenant corrupted,
// every other tenant bit-identical) is the proof.
//
// Lifecycle:
//
//   kActive ──(all thread streams hit their end marker)──▶ kComplete
//      │
//      └─(decode error / saturated matrix / oversize record)─▶ kQuarantined
//
// plus kShed, entered only from the service's deterministic load-shedding
// when an operator tightens the total budget. Quarantined and shed sessions
// drop their queues immediately (the memory goes back to the fleet) but
// keep their structured reason for the final report; completed sessions
// keep serving cached decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/expected.hpp"
#include "core/retry.hpp"
#include "detect/stream_detector.hpp"
#include "mapping/decision_cache.hpp"
#include "mapping/strategy.hpp"
#include "sim/topology.hpp"
#include "sim/trace_file.hpp"

namespace tlbmap::svc {

using SessionId = std::uint64_t;

enum class SessionStatus : std::uint32_t {
  kActive,       ///< ingesting and/or decoding
  kComplete,     ///< every thread stream ended cleanly; decisions cached
  kQuarantined,  ///< fault-isolated; see QuarantineReason
  kShed,         ///< evicted by deterministic load-shedding
};

const char* to_string(SessionStatus status);

/// Why a session was fenced off. `tick` is the service pump tick at which
/// the fault tripped; `thread` names the offending stream when one exists
/// (kNoThread for matrix-level faults).
struct QuarantineReason {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
  std::uint64_t tick = 0;
  ThreadId thread = kNoThread;

  bool operator==(const QuarantineReason&) const = default;
};

/// Per-session resource fences, fixed at admission.
struct SessionLimits {
  /// Undecoded bytes the session may hold across all thread queues before
  /// ingest signals backpressure.
  std::size_t queue_bytes = 64 * 1024;
  /// Ceiling on the session's total resident estimate (detector + cache +
  /// queues). Admission refuses sessions whose fixed state alone cannot
  /// fit; at runtime the queue bound keeps the variable part under it.
  std::size_t budget_bytes = 8 * 1024 * 1024;
  /// Decode budget per service pump — the per-session deadline: a
  /// pathological stream exhausts its slice and yields, it cannot starve
  /// the other tenants.
  std::uint64_t deadline_events = 8192;
};

/// What ingest() reports back to a well-behaved client.
struct IngestResult {
  std::size_t accepted_bytes = 0;
  std::size_t queued_bytes = 0;  ///< post-ingest total across threads
};

class Session {
 public:
  Session(SessionId id, std::string tenant, int num_threads, int page_shift,
          SessionLimits limits, StreamDetectorConfig detector_config,
          DecisionCacheConfig cache_config, RetryPolicy retry);

  SessionId id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  int num_threads() const { return detector_.num_threads(); }
  SessionStatus status() const { return status_; }
  const QuarantineReason& quarantine_reason() const { return reason_; }
  const SessionLimits& limits() const { return limits_; }

  /// Appends raw TLBT bytes to one thread's queue. All-or-nothing: a chunk
  /// that would overflow the session queue is refused whole with
  /// kBackpressure (retry after a pump drains the queue). Feeding a stream
  /// past its end marker is stream corruption and quarantines the session.
  Expected<IngestResult> ingest(ThreadId thread, const std::uint8_t* data,
                                std::size_t size, std::uint64_t tick);

  /// Decodes up to limits().deadline_events queued events into the
  /// detector, round-robin across threads. Returns events processed. A
  /// malformed/truncated/corrupt record quarantines the session (reason
  /// carries the decoder's structured error with its byte offset) and
  /// returns what was processed before the trip.
  std::uint64_t pump(std::uint64_t tick);

  /// Serves the tenant's mapping decision from the cache, re-matching on
  /// drift. On degenerate detection with nothing cached, arms the jittered
  /// exponential-backoff retry schedule and returns the structured error; a
  /// saturated matrix quarantines. Never recomputes on the read path when
  /// the cache is fresh.
  Expected<MappingDecision> decision(const Topology& topology,
                                     const MappingConfig& mapping_config,
                                     std::uint64_t tick);

  /// Pump-side retry driver: when a degraded-detection retry is due at
  /// `tick`, re-attempts the decision. Returns true when an attempt ran
  /// (success or not) so the service can count retries.
  bool maybe_retry(const Topology& topology,
                   const MappingConfig& mapping_config, std::uint64_t tick);

  /// Service-initiated eviction (load shedding) or fault isolation.
  void shed(std::uint64_t tick);
  void quarantine(Error error, std::uint64_t tick, ThreadId thread);

  /// Undecoded bytes across all thread queues.
  std::size_t queued_bytes() const;
  /// Deterministic resident estimate: detector + cache + queues.
  std::size_t memory_bytes() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t bytes_ingested() const { return bytes_ingested_; }
  std::uint64_t barriers_seen() const { return barriers_seen_; }

  const StreamDetector& detector() const { return detector_; }
  const DecisionCache& cache() const { return cache_; }

  // --- checkpoint plumbing (codecs live in svc/service.cpp) ---
  struct State {
    SessionId id = 0;
    std::string tenant;
    std::uint32_t num_threads = 0;
    SessionStatus status = SessionStatus::kActive;
    QuarantineReason reason;
    std::vector<TraceStreamDecoder::State> decoders;
    StreamDetectorState detector{};
    DecisionCacheState cache{};
    std::uint64_t events_processed = 0;
    std::uint64_t bytes_ingested = 0;
    std::uint64_t barriers_seen = 0;
    /// Round-robin pump cursor: sweeps fire on the session-global event
    /// count, so the cross-thread decode order must survive a resume for
    /// the matrix to stay bit-identical.
    std::int32_t next_thread = 0;
    std::int32_t retry_attempt = 0;
    std::uint64_t retry_at = 0;
    bool retry_armed = false;
    std::uint64_t gave_up_at_sweeps = 0;
    bool gave_up = false;

    bool operator==(const State&) const = default;
  };
  State state() const;
  /// Throws std::invalid_argument on shape mismatch (wrong thread count).
  void restore(const State& state);

 private:
  /// Marks the session complete once every decoder has consumed its end
  /// marker and no bytes remain queued; runs the final sweep so the last
  /// partial window still lands in the matrix.
  void maybe_complete();
  /// Shared body of decision()/maybe_retry(): one cache consult plus the
  /// retry-arming / quarantine bookkeeping.
  Expected<MappingDecision> try_decide(const Topology& topology,
                                       const MappingConfig& mapping_config,
                                       std::uint64_t tick);

  SessionId id_;
  std::string tenant_;
  int page_shift_;
  SessionLimits limits_;
  RetryPolicy retry_;

  SessionStatus status_ = SessionStatus::kActive;
  QuarantineReason reason_;

  std::vector<TraceStreamDecoder> decoders_;  ///< one per client thread
  StreamDetector detector_;
  DecisionCache cache_;

  std::uint64_t events_processed_ = 0;
  std::uint64_t bytes_ingested_ = 0;
  std::uint64_t barriers_seen_ = 0;
  int next_thread_ = 0;  ///< round-robin pump cursor

  // Degraded-detection retry state (RetryPolicy schedule over pump ticks).
  bool retry_armed_ = false;
  std::int32_t retry_attempt_ = 0;
  std::uint64_t retry_at_ = 0;
  /// After exhausting attempts, stay quiet until a new sweep brings new
  /// signal; records the sweep count at give-up.
  bool gave_up_ = false;
  std::uint64_t gave_up_at_sweeps_ = 0;
};

}  // namespace tlbmap::svc

#include "svc/session.hpp"

#include <string>
#include <utility>

namespace tlbmap::svc {

const char* to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::kActive:
      return "active";
    case SessionStatus::kComplete:
      return "complete";
    case SessionStatus::kQuarantined:
      return "quarantined";
    case SessionStatus::kShed:
      return "shed";
  }
  return "unknown";
}

Session::Session(SessionId id, std::string tenant, int num_threads,
                 int page_shift, SessionLimits limits,
                 StreamDetectorConfig detector_config,
                 DecisionCacheConfig cache_config, RetryPolicy retry)
    : id_(id),
      tenant_(std::move(tenant)),
      page_shift_(page_shift),
      limits_(limits),
      retry_(retry),
      decoders_(static_cast<std::size_t>(num_threads)),
      detector_(num_threads, detector_config),
      cache_(cache_config) {
  retry_.validate();
  // Jitter the backoff per session so tenants that degrade together do not
  // retry in lockstep; the seed mix keeps it deterministic per session id.
  retry_.seed ^= id_;
}

Expected<IngestResult> Session::ingest(ThreadId thread,
                                       const std::uint8_t* data,
                                       std::size_t size, std::uint64_t tick) {
  if (status_ == SessionStatus::kQuarantined) {
    return Error{ErrorCode::kSessionQuarantined,
                 "session " + std::to_string(id_) + " (" + tenant_ +
                     ") is quarantined: " + reason_.message};
  }
  if (status_ == SessionStatus::kShed) {
    return Error{ErrorCode::kSessionQuarantined,
                 "session " + std::to_string(id_) + " (" + tenant_ +
                     ") was shed: " + reason_.message};
  }
  if (thread < 0 || thread >= num_threads()) {
    return Error{ErrorCode::kInvalidArgument,
                 "session " + std::to_string(id_) + ": thread " +
                     std::to_string(thread) + " out of range [0, " +
                     std::to_string(num_threads()) + ")"};
  }
  TraceStreamDecoder& decoder = decoders_[static_cast<std::size_t>(thread)];
  if (decoder.finished() && size > 0) {
    // Bytes after the end marker mean the client's framing is broken — the
    // whole session's stream state is suspect, not just this chunk.
    quarantine(Error{ErrorCode::kCorruptTrace,
                     "trailing bytes after end marker at byte " +
                         std::to_string(decoder.offset())},
               tick, thread);
    return Error{ErrorCode::kSessionQuarantined,
                 "session " + std::to_string(id_) + " (" + tenant_ +
                     ") is quarantined: " + reason_.message};
  }
  if (queued_bytes() + size > limits_.queue_bytes) {
    return Error{ErrorCode::kBackpressure,
                 "session " + std::to_string(id_) + " (" + tenant_ +
                     "): ingest of " + std::to_string(size) +
                     " bytes would exceed the " +
                     std::to_string(limits_.queue_bytes) +
                     "-byte queue; drain with pump() and retry"};
  }
  decoder.feed(data, size);
  bytes_ingested_ += size;
  return IngestResult{size, queued_bytes()};
}

std::uint64_t Session::pump(std::uint64_t tick) {
  if (status_ != SessionStatus::kActive) return 0;
  std::uint64_t processed = 0;
  const int n = num_threads();
  int idle_threads = 0;
  TraceEvent event;
  // Round-robin from where the previous pump left off so a deadline-capped
  // pump does not starve high-numbered threads.
  while (processed < limits_.deadline_events && idle_threads < n) {
    const int t = next_thread_;
    next_thread_ = (next_thread_ + 1) % n;
    TraceStreamDecoder& decoder = decoders_[static_cast<std::size_t>(t)];
    if (decoder.finished()) {
      ++idle_threads;
      continue;
    }
    const Expected<TraceStreamDecoder::Status> status = decoder.next(&event);
    if (!status.has_value()) {
      quarantine(status.error(), tick, t);
      return processed;
    }
    switch (*status) {
      case TraceStreamDecoder::Status::kNeedMore:
        ++idle_threads;
        continue;
      case TraceStreamDecoder::Status::kEnd:
        continue;  // finished() now true; counted idle next visit
      case TraceStreamDecoder::Status::kEvent:
        break;
    }
    idle_threads = 0;
    ++processed;
    ++events_processed_;
    if (event.kind == TraceEvent::Kind::kBarrier) {
      ++barriers_seen_;
    } else if (event.kind == TraceEvent::Kind::kAccess) {
      detector_.feed(t, event.access.addr >> page_shift_);
    }
  }
  maybe_complete();
  return processed;
}

void Session::maybe_complete() {
  for (const TraceStreamDecoder& decoder : decoders_) {
    if (!decoder.finished()) return;
  }
  // Final sweep: the last partial windows still carry sharing signal.
  detector_.sweep();
  status_ = SessionStatus::kComplete;
}

Expected<MappingDecision> Session::try_decide(
    const Topology& topology, const MappingConfig& mapping_config,
    std::uint64_t tick) {
  Expected<MappingDecision> decision =
      cache_.decide(detector_.matrix(), topology, mapping_config);
  if (decision.has_value()) {
    retry_armed_ = false;
    retry_attempt_ = 0;
    gave_up_ = false;
    return decision;
  }
  const Error& error = decision.error();
  if (error.code == ErrorCode::kSaturatedMatrix) {
    quarantine(error, tick, kNoThread);
    return decision;
  }
  if (error.code == ErrorCode::kDegenerateMatrix && !retry_armed_ &&
      !gave_up_) {
    // Arm the degraded-detection retry schedule: pump() re-attempts at
    // jittered exponential backoff until signal appears or attempts run out.
    retry_armed_ = true;
    retry_attempt_ = 1;
    retry_at_ = tick + retry_.delay(1);
  }
  return decision;
}

Expected<MappingDecision> Session::decision(const Topology& topology,
                                            const MappingConfig& mapping_config,
                                            std::uint64_t tick) {
  if (status_ == SessionStatus::kQuarantined ||
      status_ == SessionStatus::kShed) {
    return Error{ErrorCode::kSessionQuarantined,
                 "session " + std::to_string(id_) + " (" + tenant_ + ") is " +
                     std::string(to_string(status_)) + ": " + reason_.message};
  }
  return try_decide(topology, mapping_config, tick);
}

bool Session::maybe_retry(const Topology& topology,
                          const MappingConfig& mapping_config,
                          std::uint64_t tick) {
  if (status_ == SessionStatus::kQuarantined ||
      status_ == SessionStatus::kShed) {
    return false;
  }
  // A sweep since give-up means new signal: re-arm from attempt one.
  if (gave_up_ && detector_.sweeps() > gave_up_at_sweeps_) {
    gave_up_ = false;
    retry_armed_ = true;
    retry_attempt_ = 1;
    retry_at_ = tick + retry_.delay(1);
  }
  if (!retry_armed_ || tick < retry_at_) return false;
  const Expected<MappingDecision> decision =
      try_decide(topology, mapping_config, tick);
  if (decision.has_value()) return true;  // try_decide cleared the schedule
  if (decision.error().code != ErrorCode::kDegenerateMatrix) {
    retry_armed_ = false;  // quarantined or matcher failure: stop retrying
    return true;
  }
  ++retry_attempt_;
  if (!retry_.should_retry(retry_attempt_)) {
    retry_armed_ = false;
    gave_up_ = true;
    gave_up_at_sweeps_ = detector_.sweeps();
  } else {
    retry_at_ = tick + retry_.delay(retry_attempt_);
  }
  return true;
}

void Session::shed(std::uint64_t tick) {
  if (status_ == SessionStatus::kQuarantined) return;
  status_ = SessionStatus::kShed;
  reason_ = QuarantineReason{ErrorCode::kAdmissionRejected,
                             "shed to fit the service memory budget", tick,
                             kNoThread};
  for (TraceStreamDecoder& decoder : decoders_) decoder = {};
}

void Session::quarantine(Error error, std::uint64_t tick, ThreadId thread) {
  status_ = SessionStatus::kQuarantined;
  reason_ = QuarantineReason{error.code, std::move(error.message), tick,
                             thread};
  // Release the queues: a quarantined tenant must not hold fleet memory.
  for (TraceStreamDecoder& decoder : decoders_) decoder = {};
  retry_armed_ = false;
}

std::size_t Session::queued_bytes() const {
  std::size_t total = 0;
  for (const TraceStreamDecoder& decoder : decoders_) {
    total += decoder.buffered_bytes();
  }
  return total;
}

std::size_t Session::memory_bytes() const {
  return detector_.memory_bytes() + cache_.memory_bytes() + queued_bytes();
}

Session::State Session::state() const {
  State s;
  s.id = id_;
  s.tenant = tenant_;
  s.num_threads = static_cast<std::uint32_t>(num_threads());
  s.status = status_;
  s.reason = reason_;
  s.decoders.reserve(decoders_.size());
  for (const TraceStreamDecoder& decoder : decoders_) {
    s.decoders.push_back(decoder.state());
  }
  s.detector = detector_.state();
  s.cache = cache_.state();
  s.events_processed = events_processed_;
  s.bytes_ingested = bytes_ingested_;
  s.barriers_seen = barriers_seen_;
  s.next_thread = next_thread_;
  s.retry_attempt = retry_attempt_;
  s.retry_at = retry_at_;
  s.retry_armed = retry_armed_;
  s.gave_up_at_sweeps = gave_up_at_sweeps_;
  s.gave_up = gave_up_;
  return s;
}

void Session::restore(const State& state) {
  if (state.num_threads != static_cast<std::uint32_t>(num_threads())) {
    throw std::invalid_argument("Session::restore: thread count mismatch");
  }
  if (state.decoders.size() != decoders_.size()) {
    throw std::invalid_argument("Session::restore: decoder count mismatch");
  }
  detector_.restore(state.detector);  // throws on shape mismatch
  cache_.restore(state.cache);
  for (std::size_t i = 0; i < decoders_.size(); ++i) {
    decoders_[i].restore(state.decoders[i]);
  }
  status_ = state.status;
  reason_ = state.reason;
  events_processed_ = state.events_processed;
  bytes_ingested_ = state.bytes_ingested;
  barriers_seen_ = state.barriers_seen;
  next_thread_ = state.next_thread;
  retry_attempt_ = state.retry_attempt;
  retry_at_ = state.retry_at;
  retry_armed_ = state.retry_armed;
  gave_up_at_sweeps_ = state.gave_up_at_sweeps;
  gave_up_ = state.gave_up;
}

}  // namespace tlbmap::svc

#include "svc/service.hpp"

#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/io.hpp"

namespace tlbmap::svc {
namespace {

// FNV-1a, same constants as suite_config_hash (core/experiment.cpp): the
// hash only has to be stable and sensitive to shape, not cryptographic.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  h = fnv1a(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint32_t kMaxErrorCode =
    static_cast<std::uint32_t>(ErrorCode::kSaturatedMatrix);
constexpr std::uint32_t kMaxStatus =
    static_cast<std::uint32_t>(SessionStatus::kShed);

void write_decoder(BinWriter& w, const TraceStreamDecoder::State& s) {
  w.str(std::string_view(reinterpret_cast<const char*>(s.pending.data()),
                         s.pending.size()));
  w.u64(s.consumed);
  w.u64(s.last_addr);
  w.u64(s.records);
  w.boolean(s.header_done);
  w.boolean(s.done);
}

TraceStreamDecoder::State read_decoder(BinReader& r) {
  TraceStreamDecoder::State s;
  const std::string pending = r.str();
  s.pending.assign(pending.begin(), pending.end());
  s.consumed = r.u64();
  s.last_addr = r.u64();
  s.records = r.u64();
  s.header_done = r.boolean();
  s.done = r.boolean();
  return s;
}

void write_session(BinWriter& w, const Session::State& s) {
  w.u64(s.id);
  w.str(s.tenant);
  w.u32(s.num_threads);
  w.u32(static_cast<std::uint32_t>(s.status));
  w.u32(static_cast<std::uint32_t>(s.reason.code));
  w.str(s.reason.message);
  w.u64(s.reason.tick);
  w.i32(s.reason.thread);
  w.u64(s.decoders.size());
  for (const TraceStreamDecoder::State& d : s.decoders) write_decoder(w, d);
  write_matrix(w, s.detector.matrix);
  w.u64(s.detector.events);
  w.u64(s.detector.sweeps);
  w.u64(s.detector.windows.size());
  for (const std::vector<PageNum>& window : s.detector.windows) {
    w.u64(window.size());
    for (const PageNum page : window) w.u64(page);
  }
  w.boolean(s.cache.valid);
  write_mapping(w, s.cache.mapping);
  w.u64(s.cache.epoch);
  write_matrix(w, s.cache.matched);
  w.u64(s.events_processed);
  w.u64(s.bytes_ingested);
  w.u64(s.barriers_seen);
  w.i32(s.next_thread);
  w.i32(s.retry_attempt);
  w.u64(s.retry_at);
  w.boolean(s.retry_armed);
  w.u64(s.gave_up_at_sweeps);
  w.boolean(s.gave_up);
}

Session::State read_session(BinReader& r) {
  Session::State s;
  s.id = r.u64();
  s.tenant = r.str();
  s.num_threads = r.u32();
  const std::uint32_t status = r.u32();
  if (r.ok() && status > kMaxStatus) {
    r.fail("session status holds " + std::to_string(status));
  }
  s.status = static_cast<SessionStatus>(status);
  const std::uint32_t code = r.u32();
  if (r.ok() && code > kMaxErrorCode) {
    r.fail("quarantine code holds " + std::to_string(code));
  }
  s.reason.code = static_cast<ErrorCode>(code);
  s.reason.message = r.str();
  s.reason.tick = r.u64();
  s.reason.thread = r.i32();
  const std::uint64_t decoders = r.u64();
  if (r.ok() && decoders != s.num_threads) {
    r.fail("decoder count " + std::to_string(decoders) +
           " does not match thread count " + std::to_string(s.num_threads));
  }
  for (std::uint64_t i = 0; r.ok() && i < decoders; ++i) {
    s.decoders.push_back(read_decoder(r));
  }
  s.detector.matrix = read_matrix(r);
  s.detector.events = r.u64();
  s.detector.sweeps = r.u64();
  const std::uint64_t windows = r.u64();
  if (r.ok() && windows != s.num_threads) {
    r.fail("window count " + std::to_string(windows) +
           " does not match thread count " + std::to_string(s.num_threads));
  }
  for (std::uint64_t i = 0; r.ok() && i < windows; ++i) {
    const std::uint64_t len = r.u64();
    std::vector<PageNum> window;
    for (std::uint64_t j = 0; r.ok() && j < len; ++j) {
      window.push_back(r.u64());
    }
    s.detector.windows.push_back(std::move(window));
  }
  s.cache.valid = r.boolean();
  s.cache.mapping = read_mapping(r);
  s.cache.epoch = r.u64();
  s.cache.matched = read_matrix(r);
  s.events_processed = r.u64();
  s.bytes_ingested = r.u64();
  s.barriers_seen = r.u64();
  s.next_thread = r.i32();
  s.retry_attempt = r.i32();
  s.retry_at = r.u64();
  s.retry_armed = r.boolean();
  s.gave_up_at_sweeps = r.u64();
  s.gave_up = r.boolean();
  return s;
}

}  // namespace

void ServiceConfig::validate() const {
  machine.validate();
  detector.validate();
  cache.validate();
  retry.validate();
  if (max_sessions < 1) {
    throw std::invalid_argument("ServiceConfig: max_sessions must be >= 1");
  }
  if (session.queue_bytes == 0) {
    throw std::invalid_argument("ServiceConfig: session queue must be > 0");
  }
  if (session.deadline_events == 0) {
    throw std::invalid_argument(
        "ServiceConfig: deadline_events must be >= 1");
  }
  if (session.budget_bytes < session.queue_bytes) {
    throw std::invalid_argument(
        "ServiceConfig: session budget smaller than its queue");
  }
  if (total_budget_bytes < session.budget_bytes) {
    throw std::invalid_argument(
        "ServiceConfig: total budget smaller than one session budget");
  }
}

std::uint64_t service_config_hash(const ServiceConfig& config) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = fnv1a(h, std::string("svc-v1"));
  h = fnv1a(h, static_cast<std::uint64_t>(config.machine.num_sockets));
  h = fnv1a(h, static_cast<std::uint64_t>(config.machine.cores_per_socket));
  h = fnv1a(h, static_cast<std::uint64_t>(config.machine.cores_per_l2));
  h = fnv1a(h, static_cast<std::uint64_t>(config.machine.socket_mesh_cols));
  h = fnv1a(h, config.machine.page_size);
  h = fnv1a(h, static_cast<std::uint64_t>(config.max_sessions));
  h = fnv1a(h, config.session.queue_bytes);
  h = fnv1a(h, config.session.budget_bytes);
  h = fnv1a(h, config.session.deadline_events);
  h = fnv1a(h, config.total_budget_bytes);
  h = fnv1a(h, static_cast<std::uint64_t>(config.detector.window_pages));
  h = fnv1a(h, config.detector.sweep_every);
  h = fnv1a(h, static_cast<std::uint64_t>(config.detector.sweep_shards));
  h = fnv1a(h, static_cast<std::uint64_t>(config.cache.drift_threshold *
                                          1000000.0));
  h = fnv1a(h, static_cast<std::uint64_t>(config.retry.max_attempts));
  h = fnv1a(h, config.retry.base_delay);
  h = fnv1a(h, config.retry.factor);
  h = fnv1a(h, static_cast<std::uint64_t>(config.retry.jitter * 1000000.0));
  h = fnv1a(h, config.retry.seed);
  h = fnv1a(h, std::string(to_string(config.mapping.strategy)));
  h = fnv1a(h, static_cast<std::uint64_t>(config.mapping.auto_threshold));
  return h;
}

MappingService::MappingService(ServiceConfig config)
    : config_(std::move(config)), topology_(config_.machine) {
  config_.validate();
}

Expected<SessionId> MappingService::open_session(const std::string& tenant,
                                                 int num_threads) {
  if (num_threads < 1 || num_threads > topology_.num_cores()) {
    return Error{ErrorCode::kInvalidArgument,
                 "open_session(" + tenant + "): thread count " +
                     std::to_string(num_threads) + " outside [1, " +
                     std::to_string(topology_.num_cores()) + "]"};
  }
  const auto reject = [&](const std::string& why) -> Error {
    ++rejected_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("svc.sessions_rejected").add();
    }
    return Error{ErrorCode::kAdmissionRejected,
                 "open_session(" + tenant + "): " + why};
  };
  if (live_sessions() >= static_cast<std::size_t>(config_.max_sessions)) {
    return reject("service at its " + std::to_string(config_.max_sessions) +
                  "-session cap");
  }
  Session candidate(next_id_, tenant, num_threads,
                    config_.machine.page_shift(), config_.session,
                    config_.detector, config_.cache, config_.retry);
  // Budget admission is pessimistic: charge the fixed state plus a *full*
  // queue, so an admitted session can never be pushed over its budget (or
  // the fleet's) by bytes it is entitled to buffer.
  const std::size_t worst_case =
      candidate.memory_bytes() + config_.session.queue_bytes;
  if (worst_case > config_.session.budget_bytes) {
    return reject("fixed session state (" + std::to_string(worst_case) +
                  " bytes worst-case) exceeds the per-session budget of " +
                  std::to_string(config_.session.budget_bytes));
  }
  std::size_t fleet_worst_case = worst_case;
  for (const auto& [id, session] : sessions_) {
    if (session.status() == SessionStatus::kActive ||
        session.status() == SessionStatus::kComplete) {
      fleet_worst_case += session.memory_bytes() - session.queued_bytes() +
                          session.limits().queue_bytes;
    }
  }
  if (fleet_worst_case > config_.total_budget_bytes) {
    return reject("fleet worst-case of " + std::to_string(fleet_worst_case) +
                  " bytes exceeds the total budget of " +
                  std::to_string(config_.total_budget_bytes) +
                  " (reject-new before degrade-existing)");
  }
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::move(candidate));
  ++admitted_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("svc.sessions_admitted").add();
    metrics->gauge("svc.sessions_live").set(
        static_cast<double>(live_sessions()));
  }
  return id;
}

Session* MappingService::find_mut(SessionId id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Session* MappingService::find(SessionId id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

Expected<IngestResult> MappingService::ingest(SessionId id, ThreadId thread,
                                              const std::uint8_t* data,
                                              std::size_t size) {
  Session* session = find_mut(id);
  if (session == nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "ingest: unknown session " + std::to_string(id)};
  }
  const SessionStatus before = session->status();
  Expected<IngestResult> result = session->ingest(thread, data, size, tick_);
  obs::MetricsRegistry* metrics =
      obs::metrics_at(obs_, obs::ObsLevel::kPhases);
  if (result.has_value()) {
    if (metrics != nullptr) {
      metrics->counter("svc.bytes_ingested", {{"tenant", session->tenant()}})
          .add(size);
    }
    return result;
  }
  if (result.error().code == ErrorCode::kBackpressure) {
    ++backpressure_;
    if (metrics != nullptr) {
      metrics->counter("svc.backpressure", {{"tenant", session->tenant()}})
          .add();
    }
  }
  if (before != SessionStatus::kQuarantined &&
      session->status() == SessionStatus::kQuarantined) {
    ++quarantined_;
    if (metrics != nullptr) {
      metrics->counter("svc.sessions_quarantined").add();
    }
  }
  return result;
}

std::uint64_t MappingService::pump() {
  ++tick_;
  std::uint64_t processed = 0;
  obs::MetricsRegistry* metrics =
      obs::metrics_at(obs_, obs::ObsLevel::kPhases);
  for (auto& [id, session] : sessions_) {
    const SessionStatus before = session.status();
    const std::uint64_t events = session.pump(tick_);
    processed += events;
    if (metrics != nullptr && events > 0) {
      metrics->counter("svc.events_processed", {{"tenant", session.tenant()}})
          .add(events);
    }
    if (before != SessionStatus::kQuarantined &&
        session.status() == SessionStatus::kQuarantined) {
      ++quarantined_;
      if (metrics != nullptr) {
        metrics->counter("svc.sessions_quarantined").add();
      }
    }
  }
  for (auto& [id, session] : sessions_) {
    if (session.maybe_retry(topology_, config_.mapping, tick_)) {
      ++retry_attempts_;
      if (metrics != nullptr) {
        metrics->counter("svc.retry_attempts", {{"tenant", session.tenant()}})
            .add();
      }
    }
  }
  if (metrics != nullptr) {
    metrics->gauge("svc.memory_bytes").set(
        static_cast<double>(memory_bytes()));
    metrics->gauge("svc.sessions_live").set(
        static_cast<double>(live_sessions()));
  }
  return processed;
}

Expected<MappingDecision> MappingService::decision(SessionId id) {
  Session* session = find_mut(id);
  if (session == nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "decision: unknown session " + std::to_string(id)};
  }
  const SessionStatus before = session->status();
  Expected<MappingDecision> result =
      session->decision(topology_, config_.mapping, tick_);
  obs::MetricsRegistry* metrics =
      obs::metrics_at(obs_, obs::ObsLevel::kPhases);
  if (metrics != nullptr) {
    metrics->counter("svc.decisions", {{"tenant", session->tenant()}}).add();
    if (result.has_value() && result->degraded) {
      metrics->counter("svc.decisions_degraded",
                       {{"tenant", session->tenant()}})
          .add();
    }
  }
  if (before != SessionStatus::kQuarantined &&
      session->status() == SessionStatus::kQuarantined) {
    ++quarantined_;
    if (metrics != nullptr) {
      metrics->counter("svc.sessions_quarantined").add();
    }
  }
  return result;
}

Expected<void> MappingService::close_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error{ErrorCode::kInvalidArgument,
                 "close_session: unknown session " + std::to_string(id)};
  }
  sessions_.erase(it);
  return Expected<void>{};
}

std::size_t MappingService::live_sessions() const {
  std::size_t live = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.status() == SessionStatus::kActive ||
        session.status() == SessionStatus::kComplete) {
      ++live;
    }
  }
  return live;
}

std::size_t MappingService::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.status() == SessionStatus::kActive ||
        session.status() == SessionStatus::kComplete) {
      total += session.memory_bytes();
    }
  }
  return total;
}

void MappingService::set_total_budget_bytes(std::size_t bytes) {
  config_.total_budget_bytes = bytes;
  shed_to_budget();
}

void MappingService::shed_to_budget() {
  // Newest-admitted-first: session ids are monotonic, so walking the map in
  // reverse id order sheds the youngest tenants until the fleet fits. The
  // oldest (longest-served) tenants degrade last — deterministic by
  // construction.
  for (auto it = sessions_.rbegin();
       it != sessions_.rend() && memory_bytes() > config_.total_budget_bytes;
       ++it) {
    Session& session = it->second;
    if (session.status() != SessionStatus::kActive &&
        session.status() != SessionStatus::kComplete) {
      continue;
    }
    session.shed(tick_);
    ++shed_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("svc.sessions_shed").add();
    }
  }
}

std::vector<QuarantineReport> MappingService::quarantine_reports() const {
  std::vector<QuarantineReport> reports;
  for (const auto& [id, session] : sessions_) {
    if (session.status() == SessionStatus::kQuarantined ||
        session.status() == SessionStatus::kShed) {
      reports.push_back(QuarantineReport{id, session.tenant(),
                                         session.status(),
                                         session.quarantine_reason()});
    }
  }
  return reports;
}

std::string MappingService::serialize(std::string_view extra) const {
  BinWriter w;
  w.u64(next_id_);
  w.u64(tick_);
  w.u64(admitted_);
  w.u64(rejected_);
  w.u64(quarantined_);
  w.u64(shed_);
  w.u64(backpressure_);
  w.u64(retry_attempts_);
  w.str(extra);
  w.u64(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    write_session(w, session.state());
  }
  return seal_checkpoint(w.take(), service_config_hash(config_));
}

Expected<std::string> MappingService::restore(std::string_view bytes) {
  Expected<std::string> payload =
      unseal_checkpoint(bytes, service_config_hash(config_));
  if (!payload.has_value()) return payload.error();
  BinReader r(*payload, ErrorCode::kCorruptCheckpoint, "service payload");
  const std::uint64_t next_id = r.u64();
  const std::uint64_t tick = r.u64();
  const std::uint64_t admitted = r.u64();
  const std::uint64_t rejected = r.u64();
  const std::uint64_t quarantined = r.u64();
  const std::uint64_t shed = r.u64();
  const std::uint64_t backpressure = r.u64();
  const std::uint64_t retry_attempts = r.u64();
  std::string extra = r.str();
  const std::uint64_t count = r.u64();
  std::map<SessionId, Session> sessions;
  for (std::uint64_t i = 0; r.ok() && i < count; ++i) {
    const Session::State state = read_session(r);
    if (!r.ok()) break;
    if (state.num_threads == 0 ||
        state.num_threads >
            static_cast<std::uint32_t>(topology_.num_cores())) {
      r.fail("session " + std::to_string(state.id) + " thread count " +
             std::to_string(state.num_threads) + " out of range");
      break;
    }
    Session session(state.id, state.tenant,
                    static_cast<int>(state.num_threads),
                    config_.machine.page_shift(), config_.session,
                    config_.detector, config_.cache, config_.retry);
    try {
      session.restore(state);
    } catch (const std::invalid_argument& e) {
      r.fail(std::string("session ") + std::to_string(state.id) + ": " +
             e.what());
      break;
    }
    sessions.emplace(state.id, std::move(session));
  }
  if (r.ok() && !r.at_end()) {
    r.fail("trailing bytes after last session");
  }
  if (!r.ok()) return r.error();
  sessions_ = std::move(sessions);
  next_id_ = next_id;
  tick_ = tick;
  admitted_ = admitted;
  rejected_ = rejected;
  quarantined_ = quarantined;
  shed_ = shed;
  backpressure_ = backpressure;
  retry_attempts_ = retry_attempts;
  return extra;
}

Expected<void> MappingService::save(const std::filesystem::path& path,
                                    std::string_view extra) const {
  return atomic_write_file(path, serialize(extra));
}

Expected<std::string> MappingService::load(const std::filesystem::path& path) {
  Expected<std::string> bytes = read_file(path);
  if (!bytes.has_value()) return bytes.error();
  return restore(*bytes);
}

}  // namespace tlbmap::svc

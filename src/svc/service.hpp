// Mapping-as-a-service host (DESIGN.md Sec. 16).
//
// The batch pipeline answers "where should this one application's threads
// go" after the run; the MappingService answers it *while many tenants
// run*: each tenant opens a session, streams its per-thread TLBT traces in
// fragments, and reads back placement decisions computed from the same
// sharing heuristics — incrementally, behind an epoch-tagged cache.
//
// Hardening is the point, not an add-on:
//   - admission control: a fixed session cap plus per-session and fleet
//     memory budgets, enforced *before* a tenant holds any state; the
//     shedding discipline is reject-new-before-degrade-existing;
//   - backpressure: bounded per-session ingest queues refuse whole chunks
//     with kBackpressure instead of buffering unboundedly;
//   - deadlines: every pump gives each session a bounded decode slice, so
//     one pathological stream cannot starve the fleet;
//   - fault isolation: a tenant tripping the error taxonomy (corrupt
//     trace, saturated matrix, matcher failure) is quarantined with a
//     structured reason; every other session's decisions are bit-identical
//     to a run where the faulty tenant never existed (test_service.cpp
//     proves the differential);
//   - checkpointing: the whole service state seals into a TLBK envelope
//     (same format discipline as suite checkpoints), so a SIGTERM'd daemon
//     resumes every session mid-stream, deterministically.
//
// Everything is single-threaded and tick-driven: pump() is the only place
// work happens, sessions advance in id order, and all retry jitter is
// seeded — two services fed the same bytes in the same order are
// bit-identical, which is what makes the robustness properties testable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/expected.hpp"
#include "core/retry.hpp"
#include "detect/stream_detector.hpp"
#include "mapping/decision_cache.hpp"
#include "mapping/strategy.hpp"
#include "obs/obs.hpp"
#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "svc/session.hpp"

namespace tlbmap::svc {

struct ServiceConfig {
  /// Machine whose topology decisions target (also supplies page_shift for
  /// the stream detectors).
  MachineConfig machine = MachineConfig::harpertown();

  /// Hard cap on concurrently live (active or complete) sessions.
  int max_sessions = 64;
  /// Per-session fences applied at admission.
  SessionLimits session{};
  /// Fleet-wide memory ceiling across live sessions (queues included).
  /// Admission refuses a session that could not fit even with every
  /// existing queue full; set_total_budget_bytes() sheds newest-first when
  /// an operator tightens it at runtime.
  std::size_t total_budget_bytes = 64 * 1024 * 1024;

  StreamDetectorConfig detector{};
  DecisionCacheConfig cache{};
  /// Degraded-detection retry schedule (jitter is deterministic per
  /// session: the policy seed is mixed with the session id).
  RetryPolicy retry{/*max_attempts=*/6, /*base_delay=*/2, /*factor=*/2,
                    /*jitter=*/0.5, /*seed=*/0x73766372ull};
  MappingConfig mapping{};

  /// Throws std::invalid_argument on non-positive caps or budgets smaller
  /// than one session's queue.
  void validate() const;
};

/// FNV-1a over the service-shape fields, sealed into checkpoint envelopes:
/// a snapshot resumes only into a service configured identically.
std::uint64_t service_config_hash(const ServiceConfig& config);

/// One quarantined or shed session, for the structured end-of-run report.
struct QuarantineReport {
  SessionId id = 0;
  std::string tenant;
  SessionStatus status = SessionStatus::kQuarantined;
  QuarantineReason reason;

  bool operator==(const QuarantineReport&) const = default;
};

class MappingService {
 public:
  explicit MappingService(ServiceConfig config);

  const ServiceConfig& config() const { return config_; }
  const Topology& topology() const { return topology_; }

  /// Wires metrics/tracing (svc.* counters, per-tenant labels). Null (the
  /// default) keeps every hook to one comparison.
  void set_observability(obs::ObsContext* obs) { obs_ = obs; }

  /// Admits a tenant or refuses with kAdmissionRejected (session cap, the
  /// per-session budget cannot hold the fixed detector state, or the fleet
  /// budget could not absorb a full session) / kInvalidArgument (thread
  /// count outside [1, cores]). Admission never disturbs existing sessions:
  /// reject-new comes strictly before degrade-existing.
  Expected<SessionId> open_session(const std::string& tenant,
                                   int num_threads);

  /// Appends trace bytes to one session stream. kBackpressure when the
  /// chunk does not fit the session queue (nothing is taken); quarantines
  /// the session on framing corruption.
  Expected<IngestResult> ingest(SessionId id, ThreadId thread,
                                const std::uint8_t* data, std::size_t size);
  Expected<IngestResult> ingest(SessionId id, ThreadId thread,
                                const std::vector<std::uint8_t>& bytes) {
    return ingest(id, thread, bytes.data(), bytes.size());
  }

  /// One service tick: every active session decodes up to its deadline
  /// slice (in session-id order — the determinism contract), then due
  /// degraded-detection retries fire. Returns events decoded fleet-wide.
  std::uint64_t pump();

  /// The tenant's current placement decision (cached unless drifted).
  Expected<MappingDecision> decision(SessionId id);

  /// Removes a session entirely (any state). kInvalidArgument if unknown.
  Expected<void> close_session(SessionId id);

  const Session* find(SessionId id) const;
  std::uint64_t tick() const { return tick_; }
  /// Live = admitted and not quarantined/shed.
  std::size_t live_sessions() const;
  std::size_t total_sessions() const { return sessions_.size(); }
  /// Resident estimate across live sessions (quarantined/shed sessions
  /// dropped their queues and count nothing).
  std::size_t memory_bytes() const;

  /// Tightens (or relaxes) the fleet budget; when the live estimate
  /// exceeds the new ceiling, sessions are shed newest-admitted-first
  /// until it fits — deterministic, and existing old tenants degrade last.
  void set_total_budget_bytes(std::size_t bytes);

  /// Every quarantined or shed session with its structured reason, in
  /// session-id order.
  std::vector<QuarantineReport> quarantine_reports() const;

  // Lifetime counters (also exported as svc.* metrics).
  std::uint64_t sessions_admitted() const { return admitted_; }
  std::uint64_t sessions_rejected() const { return rejected_; }
  std::uint64_t sessions_quarantined() const { return quarantined_; }
  std::uint64_t sessions_shed() const { return shed_; }
  std::uint64_t backpressure_signals() const { return backpressure_; }
  std::uint64_t retry_attempts() const { return retry_attempts_; }

  // --- checkpointing (TLBK envelope, service_config_hash-tagged) ---

  /// Serializes the full service state (every session mid-stream) plus an
  /// opaque caller blob (`extra` — the serve driver stores its feeder
  /// cursors there) into a sealed envelope.
  std::string serialize(std::string_view extra = {}) const;

  /// Restores this service from serialize() output. The service must be
  /// freshly constructed with the *same config* (enforced by the envelope
  /// hash). Returns the embedded `extra` blob. kCorruptCheckpoint /
  /// kCheckpointMismatch on damage or config skew.
  Expected<std::string> restore(std::string_view bytes);

  /// File helpers over serialize()/restore() via atomic_write_file.
  Expected<void> save(const std::filesystem::path& path,
                      std::string_view extra = {}) const;
  Expected<std::string> load(const std::filesystem::path& path);

 private:
  Session* find_mut(SessionId id);
  void shed_to_budget();

  ServiceConfig config_;
  Topology topology_;
  obs::ObsContext* obs_ = nullptr;

  std::map<SessionId, Session> sessions_;  ///< id order = determinism order
  SessionId next_id_ = 1;
  std::uint64_t tick_ = 0;

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t backpressure_ = 0;
  std::uint64_t retry_attempts_ = 0;
};

}  // namespace tlbmap::svc

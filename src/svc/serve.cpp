#include "svc/serve.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/codec.hpp"
#include "core/io.hpp"
#include "core/shutdown.hpp"
#include "npb/workload.hpp"
#include "obs/json.hpp"
#include "sim/trace_file.hpp"

namespace tlbmap::svc {
namespace {

/// One tenant's recorded per-thread buffers plus how far each stream has
/// been fed into the service.
struct Feeder {
  int index = 0;
  std::string name;
  SessionId session = 0;  ///< 0 = not admitted yet
  bool dead = false;      ///< quarantined/shed: stop feeding
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<std::size_t> cursors;

  bool open() const { return session != 0; }
  bool drained() const {
    for (std::size_t t = 0; t < buffers.size(); ++t) {
      if (cursors[t] < buffers[t].size()) return false;
    }
    return true;
  }
};

/// Deterministic stream corruption: a run of 0x04 bytes mid-buffer. 0x04
/// is not a barrier, not an end marker and has the access bit clear, so
/// whichever of the overwritten bytes is first read as a record header
/// trips kMalformedTrace at a stable offset.
void corrupt_buffer(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 32) return;
  const std::size_t at = bytes.size() / 2;
  for (std::size_t i = at; i < at + 8 && i < bytes.size(); ++i) {
    bytes[i] = 0x04;
  }
}

std::vector<Feeder> build_feeders(const ServeOptions& options) {
  WorkloadParams params;
  params.num_threads = options.threads;
  params.size_scale = options.size_scale;
  params.iter_scale = options.iter_scale;
  std::vector<Feeder> feeders;
  feeders.reserve(static_cast<std::size_t>(options.tenants));
  for (int k = 0; k < options.tenants; ++k) {
    Feeder f;
    f.index = k;
    f.name = "tenant-" + std::to_string(k);
    // Per-tenant seed depends only on the tenant's own index, never on the
    // fleet composition — the fault-isolation differential (run with vs.
    // without the corrupt tenant) depends on surviving tenants seeing
    // byte-identical streams either way.
    const auto workload = make_npb_workload(options.app, params);
    f.buffers = record_workload(*workload,
                                options.seed + static_cast<std::uint64_t>(k));
    if (k == options.corrupt_tenant && !f.buffers.empty()) {
      corrupt_buffer(f.buffers[0]);
    }
    f.cursors.assign(f.buffers.size(), 0);
    feeders.push_back(std::move(f));
  }
  return feeders;
}

/// Feeder cursors, sealed into the service checkpoint's `extra` blob.
std::string encode_cursors(const std::vector<Feeder>& feeders) {
  BinWriter w;
  w.u64(feeders.size());
  for (const Feeder& f : feeders) {
    w.u64(f.session);
    w.boolean(f.dead);
    w.u64(f.cursors.size());
    for (const std::size_t c : f.cursors) w.u64(c);
  }
  return w.take();
}

Expected<void> decode_cursors(const std::string& extra,
                              std::vector<Feeder>& feeders) {
  BinReader r(extra, ErrorCode::kCorruptCheckpoint, "serve feeder cursors");
  const std::uint64_t count = r.u64();
  if (r.ok() && count != feeders.size()) {
    r.fail("feeder count " + std::to_string(count) + " does not match " +
           std::to_string(feeders.size()) + " configured tenants");
  }
  for (std::uint64_t i = 0; r.ok() && i < count; ++i) {
    Feeder& f = feeders[static_cast<std::size_t>(i)];
    f.session = r.u64();
    f.dead = r.boolean();
    const std::uint64_t threads = r.u64();
    if (r.ok() && threads != f.cursors.size()) {
      r.fail("feeder " + std::to_string(i) + " thread count " +
             std::to_string(threads) + " does not match recording");
      break;
    }
    for (std::uint64_t t = 0; r.ok() && t < threads; ++t) {
      const std::uint64_t cursor = r.u64();
      if (r.ok() && cursor > f.buffers[static_cast<std::size_t>(t)].size()) {
        r.fail("feeder " + std::to_string(i) + " cursor " +
               std::to_string(cursor) + " past its recorded stream");
        break;
      }
      f.cursors[static_cast<std::size_t>(t)] =
          static_cast<std::size_t>(cursor);
    }
  }
  if (!r.ok()) return r.error();
  return Expected<void>{};
}

const char* error_name(ErrorCode code) { return tlbmap::to_string(code); }

}  // namespace

ServeOutcome run_serve(const ServeOptions& options, std::ostream* log,
                       obs::ObsContext* obs) {
  ServeOutcome outcome;
  if (options.tenants < 1 || options.threads < 1 ||
      options.chunk_bytes == 0) {
    outcome.exit_code = 1;
    outcome.error = "serve: tenants, threads and chunk bytes must be >= 1";
    return outcome;
  }
  if (options.corrupt_tenant >= options.tenants) {
    outcome.exit_code = 1;
    outcome.error = "serve: --corrupt-tenant index past the tenant fleet";
    return outcome;
  }
  MappingService service(options.service);
  service.set_observability(obs);
  std::vector<Feeder> feeders = build_feeders(options);

  if (options.resume && !options.checkpoint_path.empty() &&
      std::filesystem::exists(options.checkpoint_path)) {
    Expected<std::string> extra = service.load(options.checkpoint_path);
    if (extra.has_value()) {
      const Expected<void> cursors = decode_cursors(*extra, feeders);
      if (cursors.has_value()) {
        outcome.resumed = true;
        if (log != nullptr) {
          *log << "[serve] resumed from " << options.checkpoint_path
               << " at tick " << service.tick() << "\n";
        }
      } else {
        outcome.exit_code = 1;
        outcome.error = cursors.error().to_string();
        return outcome;
      }
    } else if (log != nullptr) {
      // Same discipline as the suite: a bad/missing checkpoint degrades to
      // a fresh run instead of refusing to serve.
      *log << "[serve] cannot resume (" << extra.error().to_string()
           << "); starting fresh\n";
    }
  }

  const bool checkpointing = !options.checkpoint_path.empty();
  std::uint64_t idle_ticks = 0;
  while (true) {
    if (shutdown_requested()) {
      if (checkpointing) {
        const Expected<void> saved =
            service.save(options.checkpoint_path, encode_cursors(feeders));
        if (log != nullptr) {
          if (saved.has_value()) {
            *log << "[serve] interrupted; checkpoint written to "
                 << options.checkpoint_path << " (resume with --resume)\n";
          } else {
            *log << "[serve] interrupted; checkpoint failed: "
                 << saved.error().to_string() << "\n";
          }
        }
      }
      outcome.exit_code = 130;
      break;
    }

    bool progressed = false;
    // Admission: open sessions for tenants not yet admitted. A rejection
    // (cap/budget) is retried next tick — existing sessions are never
    // disturbed to make room.
    for (Feeder& f : feeders) {
      if (f.open() || f.dead) continue;
      const Expected<SessionId> id =
          service.open_session(f.name, options.threads);
      if (id.has_value()) {
        f.session = *id;
        progressed = true;
      }
    }
    // Ingest one fragment per thread per tick.
    for (Feeder& f : feeders) {
      if (!f.open() || f.dead) continue;
      for (std::size_t t = 0; t < f.buffers.size(); ++t) {
        const std::vector<std::uint8_t>& buffer = f.buffers[t];
        std::size_t& cursor = f.cursors[t];
        if (cursor >= buffer.size()) continue;
        const std::size_t chunk =
            std::min(options.chunk_bytes, buffer.size() - cursor);
        const Expected<IngestResult> fed = service.ingest(
            f.session, static_cast<ThreadId>(t), buffer.data() + cursor,
            chunk);
        if (fed.has_value()) {
          cursor += chunk;
          progressed = true;
        } else if (fed.error().code != ErrorCode::kBackpressure) {
          f.dead = true;  // quarantined (or shed): stop feeding
          break;
        }
      }
    }
    const std::uint64_t events = service.pump();
    outcome.events += events;
    ++outcome.ticks;
    if (events > 0) progressed = true;
    // Decision reads every tick: cache-served when fresh, and early
    // degenerate reads arm the per-session retry schedule.
    for (Feeder& f : feeders) {
      if (!f.open() || f.dead) continue;
      const Session* session = service.find(f.session);
      if (session == nullptr) continue;
      if (session->status() == SessionStatus::kQuarantined ||
          session->status() == SessionStatus::kShed) {
        f.dead = true;
        continue;
      }
      (void)service.decision(f.session);
    }
    if (checkpointing && outcome.ticks % 32 == 0) {
      (void)service.save(options.checkpoint_path, encode_cursors(feeders));
    }

    bool done = true;
    for (const Feeder& f : feeders) {
      if (f.dead) continue;
      const Session* session =
          f.open() ? service.find(f.session) : nullptr;
      if (!f.open() || !f.drained() ||
          (session != nullptr &&
           session->status() == SessionStatus::kActive)) {
        done = false;
        break;
      }
    }
    if (done) break;
    if (options.max_ticks > 0 && outcome.ticks >= options.max_ticks) {
      // A tick-capped run is a deliberate pause: leave a resume point just
      // like an interrupt would.
      if (checkpointing) {
        (void)service.save(options.checkpoint_path, encode_cursors(feeders));
      }
      break;
    }
    idle_ticks = progressed ? 0 : idle_ticks + 1;
    if (idle_ticks > 1024) {
      outcome.exit_code = 1;
      outcome.error = "serve: no progress for 1024 ticks (stalled)";
      break;
    }
  }

  for (Feeder& f : feeders) {
    TenantOutcome t;
    t.index = f.index;
    t.session = f.session;
    t.tenant = f.name;
    const Session* session = f.open() ? service.find(f.session) : nullptr;
    if (session != nullptr) {
      t.status = session->status();
      t.events = session->events_processed();
      if (session->status() == SessionStatus::kActive ||
          session->status() == SessionStatus::kComplete) {
        const Expected<MappingDecision> decision =
            service.decision(f.session);
        if (decision.has_value()) {
          t.has_decision = true;
          t.mapping = decision->mapping;
          t.epoch = decision->epoch;
          t.degraded = decision->degraded;
        }
      } else if (session->cache().has_decision()) {
        // Quarantined/shed after a decision existed: report the last one.
        const DecisionCacheState cache = session->cache().state();
        t.has_decision = true;
        t.mapping = cache.mapping;
        t.epoch = cache.epoch;
      }
    }
    outcome.tenants.push_back(std::move(t));
  }
  outcome.quarantines = service.quarantine_reports();

  if (log != nullptr) {
    *log << "[serve] " << outcome.ticks << " ticks, " << outcome.events
         << " events, " << service.live_sessions() << "/" << feeders.size()
         << " sessions live, " << outcome.quarantines.size()
         << " quarantined/shed\n";
    for (const QuarantineReport& q : outcome.quarantines) {
      *log << "[serve] quarantine session=" << q.id << " tenant=" << q.tenant
           << " status=" << to_string(q.status) << " code=["
           << error_name(q.reason.code) << "] tick=" << q.reason.tick
           << " thread=" << q.reason.thread << " reason=" << q.reason.message
           << "\n";
    }
  }
  if (!options.report_out.empty()) {
    const Expected<void> written =
        atomic_write_file(options.report_out, serve_report_json(outcome));
    if (!written.has_value() && log != nullptr) {
      *log << "[serve] cannot write report: " << written.error().to_string()
           << "\n";
    }
  }
  return outcome;
}

std::string serve_report_json(const ServeOutcome& outcome) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"exit_code\": " << outcome.exit_code << ",\n";
  out << "  \"error\": " << obs::json_str(outcome.error) << ",\n";
  out << "  \"ticks\": " << outcome.ticks << ",\n";
  out << "  \"events\": " << outcome.events << ",\n";
  out << "  \"resumed\": " << (outcome.resumed ? "true" : "false") << ",\n";
  out << "  \"tenants\": [";
  for (std::size_t i = 0; i < outcome.tenants.size(); ++i) {
    const TenantOutcome& t = outcome.tenants[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"index\": " << t.index << ", \"session\": " << t.session
        << ", \"tenant\": " << obs::json_str(t.tenant) << ", \"status\": "
        << obs::json_str(to_string(t.status)) << ", \"events\": " << t.events
        << ", \"has_decision\": " << (t.has_decision ? "true" : "false")
        << ", \"epoch\": " << t.epoch << ", \"degraded\": "
        << (t.degraded ? "true" : "false") << ", \"mapping\": [";
    for (std::size_t c = 0; c < t.mapping.size(); ++c) {
      if (c > 0) out << ", ";
      out << t.mapping[c];
    }
    out << "]}";
  }
  out << "\n  ],\n";
  out << "  \"quarantines\": [";
  for (std::size_t i = 0; i < outcome.quarantines.size(); ++i) {
    const QuarantineReport& q = outcome.quarantines[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"session\": " << q.id << ", \"tenant\": "
        << obs::json_str(q.tenant) << ", \"status\": "
        << obs::json_str(to_string(q.status)) << ", \"code\": "
        << obs::json_str(tlbmap::to_string(q.reason.code))
        << ", \"tick\": " << q.reason.tick << ", \"thread\": "
        << q.reason.thread << ", \"message\": "
        << obs::json_str(q.reason.message) << "}";
  }
  out << "\n  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace tlbmap::svc

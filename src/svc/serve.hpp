// The `tlbmap serve` daemon driver (DESIGN.md Sec. 16): hosts a
// MappingService fed by N synthetic tenants, each streaming a recorded NPB
// trace in fragments, and runs the tick loop until every tenant completes
// (or is quarantined / the process is told to stop).
//
// This is the service's integration harness as much as its front end: the
// fault matrix (--corrupt-tenant injects deterministic stream corruption
// into one tenant), the SIGTERM -> checkpoint -> resume path, and the
// structured quarantine report the CI soak job greps all live here. The
// feeder cursors ride inside the service checkpoint's `extra` blob, so a
// resumed daemon re-synthesises the same recorded buffers (same seeds) and
// continues each stream from the exact byte where the snapshot stopped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mapping/decision_cache.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"

namespace tlbmap::svc {

struct ServeOptions {
  ServiceConfig service{};

  /// Synthetic tenant fleet: `tenants` sessions, each recording `app` at
  /// `threads` threads with per-tenant seeds derived from `seed`.
  int tenants = 4;
  int threads = 8;
  std::string app = "SP";
  double size_scale = 1.0;
  double iter_scale = 1.0;
  std::uint64_t seed = 1;

  /// Bytes each thread's feeder offers per tick (fragment size — small
  /// enough that records split across chunks constantly, which is the
  /// point).
  std::size_t chunk_bytes = 512;
  /// Stop after this many ticks even if streams remain (0 = run to
  /// completion).
  std::uint64_t max_ticks = 0;

  /// Index of the tenant whose thread-0 stream gets deterministically
  /// corrupted mid-buffer (-1 = none). The run must then end with exactly
  /// this tenant quarantined and every other tenant's outcome bit-identical
  /// to a run without it — the CI soak job asserts it end to end.
  int corrupt_tenant = -1;

  /// Checkpoint file (empty = no checkpointing). With a path set, the
  /// cooperative shutdown flag is polled every tick: on SIGTERM/SIGINT the
  /// service seals its state (feeder cursors included) and exits 130.
  std::string checkpoint_path;
  bool resume = false;

  /// Structured JSON report path (atomic write; empty = stdout summary
  /// only).
  std::string report_out;
};

/// Final state of one tenant, for the report.
struct TenantOutcome {
  int index = 0;
  SessionId session = 0;
  std::string tenant;
  SessionStatus status = SessionStatus::kActive;
  std::uint64_t events = 0;
  bool has_decision = false;
  Mapping mapping;
  std::uint64_t epoch = 0;
  bool degraded = false;

  bool operator==(const TenantOutcome&) const = default;
};

struct ServeOutcome {
  /// 0 = every stream drained; 130 = interrupted (checkpoint written when
  /// configured); 1 = internal failure (message in `error`).
  int exit_code = 0;
  std::string error;
  std::uint64_t ticks = 0;
  std::uint64_t events = 0;
  bool resumed = false;
  std::vector<TenantOutcome> tenants;
  std::vector<QuarantineReport> quarantines;
};

/// Runs the daemon loop. `log` (may be null) receives progress lines.
ServeOutcome run_serve(const ServeOptions& options, std::ostream* log,
                       obs::ObsContext* obs);

/// The structured report the CI soak job consumes: tenant outcomes,
/// quarantine reasons (code + message + tick + thread), service counters.
std::string serve_report_json(const ServeOutcome& outcome);

}  // namespace tlbmap::svc

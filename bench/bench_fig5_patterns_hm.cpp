// Figure 5: communication patterns of the NPB applications detected by the
// hardware-managed TLB mechanism (periodic all-pairs TLB sweeps).
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);

  std::printf("== Figure 5: communication patterns, hardware-managed TLB "
              "(HM)\n");
  std::printf("TLB: %zu entries, %zu-way; sweep every %llu cycles\n\n",
              suite.config.machine.tlb.entries, suite.config.machine.tlb.ways,
              static_cast<unsigned long long>(suite.config.hm.interval));
  for (const AppExperiment& app : suite.apps) {
    std::printf("-- %s  (sweeps: %llu, accuracy vs oracle: cosine %s, "
                "rank %s)\n%s\n",
                app.app.c_str(),
                static_cast<unsigned long long>(app.hm_detection.searches),
                fmt_double(CommMatrix::cosine_similarity(
                               app.hm_detection.matrix,
                               app.oracle_detection.matrix))
                    .c_str(),
                fmt_double(CommMatrix::rank_correlation(
                               app.hm_detection.matrix,
                               app.oracle_detection.matrix))
                    .c_str(),
                app.hm_detection.matrix.heatmap().c_str());
  }
  return 0;
}

// Engineering bench: cost of the resilience layer (google-benchmark).
//
// Not a paper artefact — this prices DESIGN.md Sec. 11: what the
// fault-injection hooks cost when faults are OFF (target: < 2% against a
// run that predates the subsystem — the hooks are a null-pointer check per
// access and a branch per tick), what a fault-laden run costs, and what the
// watchdog / online quality gate add. CI's fault-matrix job publishes the
// JSON as BENCH_resilience.json for cross-commit comparison.
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/dynamic.hpp"
#include "core/pipeline.hpp"
#include "detect/sm_detector.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace {

using namespace tlbmap;

SyntheticSpec bench_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.num_threads = 8;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.iterations = 2;
  return spec;
}

FaultPlan paper_level_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_sample_rate = 0.05;
  plan.corrupt_sample_rate = 0.02;
  plan.detect_fail_rate = 0.02;
  plan.matrix_flip_rate = 0.01;
  return plan;
}

/// One SM detection run; returns simulated accesses for the throughput
/// counter so the faults-off/faults-on comparison is per-access.
std::uint64_t detect_once(const MachineConfig& config) {
  static const auto workload = make_synthetic(bench_spec());
  Machine machine(config);
  SmDetector detector(machine, workload->num_threads(),
                      SmDetectorConfig{/*sample_threshold=*/10,
                                       /*search_cost=*/231});
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  run.observer = &detector;
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload->num_threads(); ++t) {
    streams.push_back(workload->stream(t, 1));
  }
  const MachineStats stats = machine.run(std::move(streams), run);
  benchmark::DoNotOptimize(detector.matrix().total());
  return stats.accesses;
}

/// Baseline: the faults-off hot path. The fault plan is default (disabled),
/// the watchdog off — this is the configuration every figure bench runs,
/// and the number the < 2% overhead target is measured against.
void BM_DetectFaultsOff(benchmark::State& state) {
  const MachineConfig config = MachineConfig();
  std::uint64_t accesses = 0;
  for (auto _ : state) accesses += detect_once(config);
  state.counters["accesses_per_sec"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectFaultsOff);

/// Paper-level fault rates: per-sample PRNG draws plus matrix corruption.
void BM_DetectPaperLevelFaults(benchmark::State& state) {
  MachineConfig config = MachineConfig();
  config.fault = paper_level_plan();
  std::uint64_t accesses = 0;
  for (auto _ : state) accesses += detect_once(config);
  state.counters["accesses_per_sec"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectPaperLevelFaults);

/// Watchdog armed (huge budget, never trips): prices the per-event counter
/// increment and branch on the Machine::run hot loop.
void BM_DetectWatchdogArmed(benchmark::State& state) {
  MachineConfig config = MachineConfig();
  config.watchdog_max_events = ~std::uint64_t{0};
  std::uint64_t accesses = 0;
  for (auto _ : state) accesses += detect_once(config);
  state.counters["accesses_per_sec"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectWatchdogArmed);

/// Online mapping with the quality gate exercised: matrix faults force
/// degraded decisions (health check + fallback) at every remap barrier.
void BM_DynamicDegradedDecisions(benchmark::State& state) {
  MachineConfig config = MachineConfig();
  config.fault.seed = 5;
  config.fault.matrix_zero_rate = 1.0;
  const auto workload = make_synthetic(bench_spec());
  OnlineMapperConfig online;
  online.remap_every_barriers = 1;
  online.min_matrix_total = 1;
  int degraded = 0;
  for (auto _ : state) {
    Pipeline pipe(config);
    const auto result = pipe.evaluate_dynamic(
        *workload, identity_mapping(workload->num_threads()), online, 1);
    degraded += result.degraded_decisions;
    benchmark::DoNotOptimize(result.stats.execution_cycles);
  }
  state.counters["degraded_decisions"] =
      static_cast<double>(degraded) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DynamicDegradedDecisions);

/// Comm-matrix health check alone: O(n^2) invariant scan, priced so the
/// per-decision cost of the online gate is visible in isolation.
void BM_MatrixHealthCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CommMatrix m(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      m.add(a, b, static_cast<std::uint64_t>(a + b + 1));
    }
  }
  for (auto _ : state) {
    const CommMatrix::Health health = m.health();
    benchmark::DoNotOptimize(health);
  }
}
BENCHMARK(BM_MatrixHealthCheck)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

// Figure 6: execution time of the NPB applications under the SM/HM-derived
// thread mappings, normalised to the OS (random placement) scheduler.
// Also echoes the simulated machine configuration (paper Table II / Fig. 3).
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);
  const MachineConfig& m = suite.config.machine;

  std::printf("== Table II / Figure 3: simulated machine\n");
  TextTable cfg({"parameter", "L1 cache", "L2 cache"});
  cfg.add_row({"size", std::to_string(m.l1.size_bytes / 1024) + " KB",
               std::to_string(m.l2.size_bytes / (1024 * 1024)) + " MB"});
  cfg.add_row({"number", std::to_string(m.num_cores()) + " (per core)",
               std::to_string(m.num_l2()) + " (shared by " +
                   std::to_string(m.cores_per_l2) + " cores)"});
  cfg.add_row({"line size", std::to_string(m.l1.line_size) + " B",
               std::to_string(m.l2.line_size) + " B"});
  cfg.add_row({"associativity", std::to_string(m.l1.ways) + " ways",
               std::to_string(m.l2.ways) + " ways"});
  cfg.add_row({"latency", std::to_string(m.l1.latency) + " cycles",
               std::to_string(m.l2.latency) + " cycles"});
  cfg.add_row({"protocol", "write-through", "write-back, MESI"});
  std::printf("%s", cfg.str().c_str());
  std::printf("topology: %d sockets x %d cores; TLB %zu entries %zu-way\n\n",
              m.num_sockets, m.cores_per_socket, m.tlb.entries, m.tlb.ways);

  bench::print_normalized_figure(suite, Metric::kTimeSeconds,
                                 "== Figure 6: execution time",
                                 "metric: seconds at 2.33 GHz");
  return 0;
}

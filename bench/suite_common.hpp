// Shared plumbing for the paper-reproduction bench binaries.
//
// Every figure/table bench runs (or loads from cache) the same evaluation
// suite — see core/experiment.hpp — so the first binary executed pays the
// simulation cost and the rest reuse its results. Pass --fresh to bypass
// the cache, --reps N to change the repetition count, --apps A,B,... to
// restrict the workload set.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/obs.hpp"

namespace tlbmap::bench {

/// Set by parse_suite_args when --csv is passed: figures additionally emit
/// machine-readable CSV after the human-readable table.
inline bool g_emit_csv = false;

/// Observability plumbing shared by all bench binaries: --obs-level,
/// --trace-out and --metrics-out mirror the tlbmap_cli flags. Artifacts are
/// flushed at process exit so individual benches need no epilogue code.
inline obs::ObsContext& bench_obs() {
  static obs::ObsContext ctx;
  return ctx;
}
inline std::string g_trace_out;
inline std::string g_metrics_out;

inline void write_obs_artifacts() {
  obs::ObsContext& ctx = bench_obs();
  if (!g_trace_out.empty()) {
    std::ofstream out(g_trace_out);
    ctx.tracer.export_chrome_trace(out);
    std::fprintf(stderr, "[obs] trace written to %s\n", g_trace_out.c_str());
  }
  if (!g_metrics_out.empty()) {
    std::ofstream out(g_metrics_out);
    ctx.metrics.export_jsonl(out);
    std::fprintf(stderr, "[obs] metrics written to %s\n",
                 g_metrics_out.c_str());
  }
  if (ctx.level != obs::ObsLevel::kOff) {
    std::fprintf(stderr, "\n%s", phase_profile(ctx.tracer).c_str());
  }
}

inline SuiteConfig parse_suite_args(int argc, char** argv) {
  SuiteConfig config;
  bench_obs().level = obs::ObsLevel::kOff;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fresh") {
      config.use_cache = false;
    } else if (arg == "--csv") {
      g_emit_csv = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      config.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--apps" && i + 1 < argc) {
      config.apps.clear();
      std::stringstream list(argv[++i]);
      std::string app;
      while (std::getline(list, app, ',')) {
        if (!app.empty()) config.apps.push_back(app);
      }
    } else if (arg == "--obs-level" && i + 1 < argc) {
      if (auto level = obs::parse_obs_level(argv[++i])) {
        bench_obs().level = *level;
      } else {
        std::fprintf(stderr, "unknown obs level: %s\n", argv[i]);
        std::exit(2);
      }
    } else if (arg == "--trace-out" && i + 1 < argc) {
      g_trace_out = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      g_metrics_out = argv[++i];
    } else if (arg == "--metrics-interval-events" && i + 1 < argc) {
      config.metrics_interval_events =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--manifest-out" && i + 1 < argc) {
      config.manifest_out = argv[++i];
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--fresh] [--csv] [--reps N] [--apps A,B,...]\n"
          "          [--obs-level off|phases|full] [--trace-out FILE]\n"
          "          [--metrics-out FILE] [--manifest-out FILE]\n"
          "          [--metrics-interval-events N]\n",
          argv[0]);
      std::exit(0);
    }
  }
  // Requesting an artifact implies recording; register the exit hook once.
  if ((!g_trace_out.empty() || !g_metrics_out.empty() ||
       !config.manifest_out.empty() || config.metrics_interval_events > 0) &&
      bench_obs().level == obs::ObsLevel::kOff) {
    bench_obs().level = obs::ObsLevel::kPhases;
  }
  if (bench_obs().level != obs::ObsLevel::kOff) {
    static const bool registered = [] {
      std::atexit(write_obs_artifacts);
      return true;
    }();
    (void)registered;
  }
  return config;
}

inline SuiteResult load_suite(int argc, char** argv) {
  const SuiteConfig config = parse_suite_args(argc, argv);
  obs::ObsContext& ctx = bench_obs();
  return run_suite(config, &std::cerr,
                   ctx.level == obs::ObsLevel::kOff ? nullptr : &ctx);
}

/// Prints one of the paper's normalised figures (6-9): per app, the metric
/// under each mapping divided by the OS baseline mean, with ASCII bars.
inline void print_normalized_figure(const SuiteResult& suite, Metric metric,
                                    const char* title, const char* unit) {
  std::printf("%s\n(normalized to the OS scheduler baseline; lower is "
              "better; %s)\n\n",
              title, unit);
  TextTable table({"app", "OS", "SM", "HM", "OS stddev", "SM", "HM"});
  for (const AppExperiment& app : suite.apps) {
    const double sm = app.normalized(app.sm_runs, metric);
    const double hm = app.normalized(app.hm_runs, metric);
    table.add_row({app.app, "1.000", fmt_double(sm), fmt_double(hm),
                   fmt_percent(summarize_runs(app.os_runs, metric).rel_stddev()),
                   fmt_percent(summarize_runs(app.sm_runs, metric).rel_stddev()),
                   fmt_percent(summarize_runs(app.hm_runs, metric).rel_stddev())});
  }
  std::printf("%s\n", table.str().c_str());
  if (g_emit_csv) {
    CsvTable csv({"app", "mapping", "normalized", "rel_stddev"});
    for (const AppExperiment& app : suite.apps) {
      csv.add_row({app.app, "OS", "1.0",
                   fmt_double(summarize_runs(app.os_runs, metric).rel_stddev(),
                              6)});
      csv.add_row({app.app, "SM",
                   fmt_double(app.normalized(app.sm_runs, metric), 6),
                   fmt_double(summarize_runs(app.sm_runs, metric).rel_stddev(),
                              6)});
      csv.add_row({app.app, "HM",
                   fmt_double(app.normalized(app.hm_runs, metric), 6),
                   fmt_double(summarize_runs(app.hm_runs, metric).rel_stddev(),
                              6)});
    }
    std::printf("%s\n", csv.str().c_str());
  }
  for (const AppExperiment& app : suite.apps) {
    std::printf("%-3s OS |%s| 1.000\n", app.app.c_str(), bar(1.0).c_str());
    std::printf("    SM |%s| %s\n",
                bar(app.normalized(app.sm_runs, metric)).c_str(),
                fmt_double(app.normalized(app.sm_runs, metric)).c_str());
    std::printf("    HM |%s| %s\n",
                bar(app.normalized(app.hm_runs, metric)).c_str(),
                fmt_double(app.normalized(app.hm_runs, metric)).c_str());
  }
  std::printf("\n");
}

}  // namespace tlbmap::bench

// Shared plumbing for the paper-reproduction bench binaries.
//
// Every figure/table bench runs (or loads from cache) the same evaluation
// suite — see core/experiment.hpp — so the first binary executed pays the
// simulation cost and the rest reuse its results. Pass --fresh to bypass
// the cache, --reps N to change the repetition count, --apps A,B,... to
// restrict the workload set.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace tlbmap::bench {

/// Set by parse_suite_args when --csv is passed: figures additionally emit
/// machine-readable CSV after the human-readable table.
inline bool g_emit_csv = false;

inline SuiteConfig parse_suite_args(int argc, char** argv) {
  SuiteConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fresh") {
      config.use_cache = false;
    } else if (arg == "--csv") {
      g_emit_csv = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      config.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--apps" && i + 1 < argc) {
      config.apps.clear();
      std::stringstream list(argv[++i]);
      std::string app;
      while (std::getline(list, app, ',')) {
        if (!app.empty()) config.apps.push_back(app);
      }
    } else if (arg == "--help") {
      std::printf("usage: %s [--fresh] [--csv] [--reps N] [--apps A,B,...]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return config;
}

inline SuiteResult load_suite(int argc, char** argv) {
  const SuiteConfig config = parse_suite_args(argc, argv);
  return run_suite(config, &std::cerr);
}

/// Prints one of the paper's normalised figures (6-9): per app, the metric
/// under each mapping divided by the OS baseline mean, with ASCII bars.
inline void print_normalized_figure(const SuiteResult& suite, Metric metric,
                                    const char* title, const char* unit) {
  std::printf("%s\n(normalized to the OS scheduler baseline; lower is "
              "better; %s)\n\n",
              title, unit);
  TextTable table({"app", "OS", "SM", "HM", "OS stddev", "SM", "HM"});
  for (const AppExperiment& app : suite.apps) {
    const double sm = app.normalized(app.sm_runs, metric);
    const double hm = app.normalized(app.hm_runs, metric);
    table.add_row({app.app, "1.000", fmt_double(sm), fmt_double(hm),
                   fmt_percent(summarize_runs(app.os_runs, metric).rel_stddev()),
                   fmt_percent(summarize_runs(app.sm_runs, metric).rel_stddev()),
                   fmt_percent(summarize_runs(app.hm_runs, metric).rel_stddev())});
  }
  std::printf("%s\n", table.str().c_str());
  if (g_emit_csv) {
    CsvTable csv({"app", "mapping", "normalized", "rel_stddev"});
    for (const AppExperiment& app : suite.apps) {
      csv.add_row({app.app, "OS", "1.0",
                   fmt_double(summarize_runs(app.os_runs, metric).rel_stddev(),
                              6)});
      csv.add_row({app.app, "SM",
                   fmt_double(app.normalized(app.sm_runs, metric), 6),
                   fmt_double(summarize_runs(app.sm_runs, metric).rel_stddev(),
                              6)});
      csv.add_row({app.app, "HM",
                   fmt_double(app.normalized(app.hm_runs, metric), 6),
                   fmt_double(summarize_runs(app.hm_runs, metric).rel_stddev(),
                              6)});
    }
    std::printf("%s\n", csv.str().c_str());
  }
  for (const AppExperiment& app : suite.apps) {
    std::printf("%-3s OS |%s| 1.000\n", app.app.c_str(), bar(1.0).c_str());
    std::printf("    SM |%s| %s\n",
                bar(app.normalized(app.sm_runs, metric)).c_str(),
                fmt_double(app.normalized(app.sm_runs, metric)).c_str());
    std::printf("    HM |%s| %s\n",
                bar(app.normalized(app.hm_runs, metric)).c_str(),
                fmt_double(app.normalized(app.hm_runs, metric)).c_str());
  }
  std::printf("\n");
}

}  // namespace tlbmap::bench

// Engineering bench: mapping-service hot paths (google-benchmark).
//
// Not a paper artefact — this prices DESIGN.md Sec. 16: what the hardened
// ingest path costs per decoded event (bounded queues, deadline slices,
// round-robin decode into the stream detector), what a decision read costs
// when it is a cache hit versus a drift re-match, and what sealing /
// restoring a full service checkpoint costs per session. CI's soak job
// publishes the JSON as BENCH_service.json for cross-commit comparison.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "npb/workload.hpp"
#include "sim/trace_file.hpp"
#include "svc/service.hpp"

namespace {

using namespace tlbmap;
using svc::MappingService;
using svc::ServiceConfig;
using svc::SessionId;

ServiceConfig bench_config() {
  ServiceConfig config;
  config.detector.window_pages = 32;
  config.detector.sweep_every = 1024;
  return config;
}

const std::vector<std::vector<std::uint8_t>>& bench_buffers() {
  static const auto buffers = [] {
    WorkloadParams params;
    params.num_threads = 4;
    params.size_scale = 0.1;
    params.iter_scale = 0.1;
    return record_workload(*make_npb_workload("CG", params), /*seed=*/1);
  }();
  return buffers;
}

/// Streams one tenant start to finish: chunked ingest, pump per round,
/// backpressure honoured. Returns events decoded (the throughput unit).
std::uint64_t stream_one_tenant(MappingService& service, SessionId id,
                                std::size_t chunk) {
  const auto& buffers = bench_buffers();
  std::vector<std::size_t> cursor(buffers.size(), 0);
  std::uint64_t events = 0;
  for (;;) {
    bool fed = false;
    for (ThreadId t = 0; t < static_cast<ThreadId>(buffers.size()); ++t) {
      if (cursor[t] >= buffers[t].size()) continue;
      const std::size_t n =
          std::min(chunk, buffers[t].size() - cursor[t]);
      if (service.ingest(id, t, buffers[t].data() + cursor[t], n)
              .has_value()) {
        cursor[t] += n;
      }
      fed = true;
    }
    events += service.pump();
    if (!fed && service.find(id)->status() != svc::SessionStatus::kActive) {
      break;
    }
  }
  return events;
}

void BM_ServiceIngestPump(benchmark::State& state) {
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    MappingService service(bench_config());
    const SessionId id = *service.open_session("bench", 4);
    events += stream_one_tenant(service, id, chunk);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceIngestPump)->Arg(256)->Arg(4096);

void BM_ServiceDecisionCacheHit(benchmark::State& state) {
  // Steady state: stream drained, decision cached; every read is the O(1)
  // cached-placement path the Sec. 16 read contract promises.
  MappingService service(bench_config());
  const SessionId id = *service.open_session("bench", 4);
  stream_one_tenant(service, id, 4096);
  if (!service.decision(id).has_value()) {
    state.SkipWithError("no decision from the bench stream");
    return;
  }
  for (auto _ : state) {
    auto decision = service.decision(id);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_ServiceDecisionCacheHit);

void BM_ServiceCheckpointRoundTrip(benchmark::State& state) {
  // Mid-stream snapshot of N sessions: the SIGTERM path's cost.
  const int tenants = static_cast<int>(state.range(0));
  MappingService service(bench_config());
  const auto& buffers = bench_buffers();
  for (int k = 0; k < tenants; ++k) {
    const SessionId id =
        *service.open_session("bench-" + std::to_string(k), 4);
    for (ThreadId t = 0; t < static_cast<ThreadId>(buffers.size()); ++t) {
      (void)service.ingest(id, t, buffers[t].data(),
                           std::min<std::size_t>(buffers[t].size(), 8192));
    }
  }
  service.pump();
  for (auto _ : state) {
    const std::string sealed = service.serialize("bench-extra");
    MappingService restored(bench_config());
    auto extra = restored.restore(sealed);
    benchmark::DoNotOptimize(extra);
  }
}
BENCHMARK(BM_ServiceCheckpointRoundTrip)->Arg(1)->Arg(8);

}  // namespace

BENCHMARK_MAIN();

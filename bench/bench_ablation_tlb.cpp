// Ablation: TLB geometry vs detection quality.
//
// The entry lifetime of the TLB is the paper's implicit "recency window":
// small TLBs forget shared pages before a probe arrives (missed sharing),
// huge TLBs never forget (false communication across distant phases).
// Sweeps size and associativity on BT and on the phase-shift synthetic
// workload, whose second half communicates differently from its first.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "npb/synthetic.hpp"

int main() {
  using namespace tlbmap;
  const SuiteConfig defaults;
  WorkloadParams params;
  params.iter_scale = defaults.detect_iter_scale;

  std::printf("== ablation: TLB geometry on BT (accuracy vs oracle)\n");
  TextTable table({"entries", "ways", "TLB miss rate", "SM searches",
                   "SM cosine", "HM cosine"});
  const auto bt = make_npb_workload("BT", params);
  for (const std::size_t entries : {16u, 32u, 64u, 128u, 256u, 512u}) {
    for (const std::size_t ways : {4u}) {
      MachineConfig machine = MachineConfig::harpertown();
      machine.tlb.entries = entries;
      machine.tlb.ways = ways;
      Pipeline pipe(machine);
      pipe.sm_config() = defaults.sm;
      pipe.hm_config() = defaults.hm;
      const auto oracle = pipe.detect(*bt, Pipeline::Mechanism::kOracle, 1);
      const auto sm =
          pipe.detect(*bt, Pipeline::Mechanism::kSoftwareManaged, 1);
      const auto hm =
          pipe.detect(*bt, Pipeline::Mechanism::kHardwareManaged, 1);
      table.add_row(
          {std::to_string(entries), std::to_string(ways),
           fmt_percent(sm.stats.tlb_miss_rate(), 3),
           std::to_string(sm.searches),
           fmt_double(CommMatrix::cosine_similarity(sm.matrix,
                                                    oracle.matrix)),
           fmt_double(CommMatrix::cosine_similarity(hm.matrix,
                                                    oracle.matrix))});
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("== ablation: false communication under phase changes\n");
  std::printf("(phase-shift synthetic: pairs (0,1)(2,3)... then "
              "(1,2)(3,4)...(7,0); a detector dominated by stale entries "
              "keeps reporting the old pairs)\n\n");
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPhaseShift;
  spec.iterations = 16;
  spec.shared_pages = 16;
  spec.private_pages = 96;
  const auto phased = make_synthetic(spec);
  TextTable shift({"entries", "old-pair weight", "new-pair weight",
                   "stale fraction"});
  for (const std::size_t entries : {16u, 64u, 256u, 1024u}) {
    MachineConfig machine = MachineConfig::harpertown();
    machine.tlb.entries = entries;
    Pipeline pipe(machine);
    pipe.sm_config() = SmDetectorConfig{/*sample_threshold=*/3, 231};
    const auto det =
        pipe.detect(*phased, Pipeline::Mechanism::kSoftwareManaged, 1);
    // Old pairing: (0,1)(2,3)(4,5)(6,7); new pairing: (1,2)(3,4)(5,6)(7,0).
    std::uint64_t old_weight = 0, new_weight = 0;
    for (int t = 0; t < spec.num_threads; t += 2) {
      old_weight += det.matrix.at(t, t + 1);
    }
    for (int t = 1; t < spec.num_threads; t += 2) {
      new_weight += det.matrix.at(t, (t + 1) % spec.num_threads);
    }
    const double stale =
        old_weight + new_weight == 0
            ? 0.0
            : static_cast<double>(old_weight) /
                  static_cast<double>(old_weight + new_weight);
    shift.add_row({std::to_string(entries), std::to_string(old_weight),
                   std::to_string(new_weight), fmt_percent(stale, 1)});
  }
  std::printf("%s", shift.str().c_str());
  std::printf("\n(the detected matrix is cumulative over the whole run; the "
              "dynamic-migration example shows windowed re-detection)\n");
  return 0;
}

// Ablation: detection granularity and the false-sharing blind spot.
//
// The TLB mechanism observes sharing at *page* granularity: "any access to
// the same memory page is considered as communication, regardless of the
// offset" (paper Sec. IV-C). This bench quantifies what that costs:
//
//  1. For the NPB kernels, compare the page-granularity ground truth the
//     mechanism aims at with a cache-line-granularity ground truth — if the
//     two agree, page granularity loses nothing for these apps.
//  2. On an adversarial false-sharing workload (threads interleave on
//     disjoint cache lines of shared pages), page-level detection reports a
//     dense matrix while line-level truth reports none.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "npb/synthetic.hpp"

int main() {
  using namespace tlbmap;
  const SuiteConfig defaults;
  WorkloadParams params;
  params.iter_scale = defaults.detect_iter_scale;

  std::printf("== ablation: page vs cache-line sharing granularity\n\n");
  TextTable table({"app", "page-vs-line cosine", "page-vs-line rank",
                   "SM-vs-line cosine"});
  for (const std::string& app : npb_workload_names()) {
    const auto workload = make_npb_workload(app, params);
    Pipeline pipe(MachineConfig::harpertown());
    pipe.sm_config() = defaults.sm;
    pipe.oracle_config().granularity_shift = 12;  // pages
    const auto page_oracle =
        pipe.detect(*workload, Pipeline::Mechanism::kOracle, 1);
    pipe.oracle_config().granularity_shift = 6;  // cache lines
    const auto line_oracle =
        pipe.detect(*workload, Pipeline::Mechanism::kOracle, 1);
    const auto sm =
        pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 1);
    table.add_row(
        {app,
         fmt_double(CommMatrix::cosine_similarity(page_oracle.matrix,
                                                  line_oracle.matrix)),
         fmt_double(CommMatrix::rank_correlation(page_oracle.matrix,
                                                 line_oracle.matrix)),
         fmt_double(CommMatrix::cosine_similarity(sm.matrix,
                                                  line_oracle.matrix))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("High page-vs-line agreement means page granularity is a "
              "sound proxy for these applications: their page sharing is "
              "real data sharing.\n\n");

  std::printf("== adversarial false sharing (disjoint lines, shared "
              "pages)\n\n");
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kFalseShare;
  spec.shared_pages = 32;
  spec.shared_accesses = 4096;
  spec.private_pages = 64;
  spec.iterations = 6;
  const auto fs = make_synthetic(spec);
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 3;
  pipe.oracle_config().granularity_shift = 12;
  const auto page_oracle = pipe.detect(*fs, Pipeline::Mechanism::kOracle, 1);
  pipe.oracle_config().granularity_shift = 6;
  const auto line_oracle = pipe.detect(*fs, Pipeline::Mechanism::kOracle, 1);
  const auto sm = pipe.detect(*fs, Pipeline::Mechanism::kSoftwareManaged, 1);

  TextTable fs_table({"detector", "total matrix weight"});
  fs_table.add_row({"page-granularity oracle",
                    fmt_count(static_cast<double>(page_oracle.matrix.total()))});
  fs_table.add_row({"SM (TLB, page granularity)",
                    fmt_count(static_cast<double>(sm.matrix.total()))});
  fs_table.add_row({"line-granularity oracle (truth)",
                    fmt_count(static_cast<double>(line_oracle.matrix.total()))});
  std::printf("%s\n", fs_table.str().c_str());
  std::printf(
      "The TLB mechanism inherits the page-granularity view: it cannot tell\n"
      "interleaved-but-disjoint lines from true sharing. (For *placement*\n"
      "this is usually harmless — false sharing also benefits from\n"
      "co-locating its threads, since the falsely shared lines ping-pong\n"
      "between the caches either way.)\n");
  return 0;
}

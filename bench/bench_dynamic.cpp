// Engineering bench: cost of self-correcting online remapping
// (google-benchmark).
//
// Not a paper artefact — this prices DESIGN.md Sec. 17: what a dynamic run
// costs with the full canary/rollback machinery on versus the pre-PR-10
// commit-blind mapper (canary windows off), measured over the adversarial
// phase-churn workload, plus the microcost of one PhaseDetector
// observation. CI's fault-matrix job publishes the JSON as
// BENCH_dynamic.json; the bench-regression job gates it against
// bench/baseline/BENCH_dynamic.json.
#include <benchmark/benchmark.h>

#include "core/dynamic.hpp"
#include "core/pipeline.hpp"
#include "detect/phase_detector.hpp"
#include "npb/synthetic.hpp"

namespace {

using namespace tlbmap;

SyntheticSpec churn_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kScheduled;
  spec.num_threads = 8;
  spec.shift_schedule = {0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0};
  spec.churn_phase_iters = 1;
  spec.shared_accesses = 4096;
  spec.private_accesses = 512;
  return spec;
}

OnlineMapperConfig online_config(bool canary) {
  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 2;
  cfg.min_matrix_total = 1;
  cfg.detector.sample_threshold = 1;
  if (!canary) cfg.canary_barriers = 0;  // pre-PR-10 commit-blind mapper
  return cfg;
}

/// One full dynamic run over the phase-churn bait. arg 0: canary/rollback
/// off (the historical mapper); arg 1: the self-correcting configuration.
void BM_OnlineRemap(benchmark::State& state) {
  const auto workload = make_synthetic(churn_spec());
  const OnlineMapperConfig cfg = online_config(state.range(0) == 1);
  Pipeline pipe((MachineConfig::harpertown()));
  std::uint64_t accesses = 0;
  int migrations = 0;
  int rollbacks = 0;
  for (auto _ : state) {
    const auto result =
        pipe.evaluate_dynamic(*workload, identity_mapping(8), cfg, 3);
    benchmark::DoNotOptimize(result.stats.execution_cycles);
    accesses += result.stats.accesses;
    migrations += result.migrations;
    rollbacks += result.rollbacks;
  }
  state.counters["accesses_per_sec"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
  state.counters["migrations"] = static_cast<double>(migrations);
  state.counters["rollbacks"] = static_cast<double>(rollbacks);
}
BENCHMARK(BM_OnlineRemap)->Arg(0)->Arg(1);

/// Microcost of one phase observation (cosine drift + miss-rate deltas)
/// at the paper's 8 threads and at manycore width.
void BM_PhaseObserve(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  PhaseDetector detector(threads);
  CommMatrix pairs(threads);
  for (int t = 0; t + 1 < threads; t += 2) pairs.add(t, t + 1, 1000);
  // Anchor once so the steady-state path (similarity against a reference)
  // is what the loop measures.
  detector.observe(pairs);
  std::uint64_t observations = 0;
  for (auto _ : state) {
    for (ThreadId t = 0; t < threads; ++t) detector.on_access(t, t % 7 == 0);
    benchmark::DoNotOptimize(detector.observe(pairs));
    ++observations;
  }
  state.counters["observes_per_sec"] = benchmark::Counter(
      static_cast<double>(observations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PhaseObserve)->Arg(8)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// Figure 4: communication patterns of the NPB applications detected by the
// software-managed TLB mechanism. Prints one ASCII heatmap per application
// (darker = more communication) plus quantitative accuracy against the
// full-trace oracle — the paper compares the heatmaps by eye only.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);

  std::printf("== Figure 4: communication patterns, software-managed TLB "
              "(SM)\n");
  std::printf("TLB: %zu entries, %zu-way; sampling 1 in %u misses\n\n",
              suite.config.machine.tlb.entries, suite.config.machine.tlb.ways,
              suite.config.sm.sample_threshold);
  for (const AppExperiment& app : suite.apps) {
    std::printf("-- %s  (searches: %llu, accuracy vs oracle: cosine %s, "
                "rank %s)\n%s\n",
                app.app.c_str(),
                static_cast<unsigned long long>(app.sm_detection.searches),
                fmt_double(CommMatrix::cosine_similarity(
                               app.sm_detection.matrix,
                               app.oracle_detection.matrix))
                    .c_str(),
                fmt_double(CommMatrix::rank_correlation(
                               app.sm_detection.matrix,
                               app.oracle_detection.matrix))
                    .c_str(),
                app.sm_detection.matrix.heatmap().c_str());
  }
  return 0;
}

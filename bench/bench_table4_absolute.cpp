// Table IV: execution time and absolute rates (invalidations, snoop
// transactions and L2 misses per second) per application and mapping.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);

  std::printf("== Table IV: absolute values per mapping (means over %d "
              "runs)\n\n",
              suite.config.repetitions);

  const struct {
    Metric metric;
    const char* label;
    bool count;
  } kRows[] = {
      {Metric::kTimeSeconds, "execution time (s)", false},
      {Metric::kInvalidationsPerSec, "invalidations / s", true},
      {Metric::kSnoopsPerSec, "snoop transactions / s", true},
      {Metric::kL2MissesPerSec, "L2 misses / s", true},
  };

  for (const auto& row : kRows) {
    std::printf("-- %s\n", row.label);
    std::vector<std::string> header = {"mapping"};
    for (const AppExperiment& app : suite.apps) header.push_back(app.app);
    TextTable t(header);
    for (const char* mapping : {"OS", "SM", "HM"}) {
      std::vector<std::string> cells = {mapping};
      for (const AppExperiment& app : suite.apps) {
        const MappingRuns& runs = mapping == std::string("OS")   ? app.os_runs
                                  : mapping == std::string("SM") ? app.sm_runs
                                                                 : app.hm_runs;
        const double v = summarize_runs(runs, row.metric).mean;
        cells.push_back(row.count ? fmt_count(v) : fmt_double(v, 4));
      }
      t.add_row(std::move(cells));
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}

// Ablation: what does the exact Edmonds matching buy?
//
// For every NPB application, derives thread mappings from the SM-detected
// matrix with (a) the hierarchical blossom matcher (the paper's algorithm),
// (b) the greedy matcher, and compares them against identity, round-robin
// and random placements. Reports both the static communication-distance
// cost and the simulated execution time.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "mapping/bipartition.hpp"
#include "mapping/hierarchical.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  SuiteConfig config;
  config.repetitions = 2;  // matrices only; reuse whatever cache exists
  if (argc > 1 && std::string(argv[1]) == "--fresh") config.use_cache = false;

  const MachineConfig machine = MachineConfig::harpertown();
  const Topology topology(machine);
  Pipeline pipe(machine);

  std::printf("== ablation: mapping algorithm quality\n");
  std::printf("(cost = sum of comm(a,b) * hop distance; time = simulated "
              "seconds, one run each)\n\n");
  TextTable table({"app", "policy", "comm-distance cost", "time (s)",
                   "norm. vs random"});

  const SuiteConfig defaults;
  WorkloadParams detect_params;
  detect_params.iter_scale = defaults.detect_iter_scale;

  for (const std::string& app : config.apps) {
    const auto workload = make_npb_workload(app);
    const auto detect_workload = make_npb_workload(app, detect_params);
    Pipeline detector(machine);
    detector.sm_config() = defaults.sm;
    const auto det = detector.detect(
        *detect_workload, Pipeline::Mechanism::kSoftwareManaged, 1);
    const CommMatrix& m = det.matrix;

    HierarchicalMapper blossom(topology);
    HierarchicalMapper greedy(
        topology,
        HierarchicalMapperConfig{HierarchicalMapperConfig::Matcher::kGreedy});
    BipartitionMapper bipart(topology);

    struct Candidate {
      const char* label;
      Mapping mapping;
    };
    const std::vector<Candidate> candidates = {
        {"blossom (paper)", blossom.map(m)},
        {"greedy matching", greedy.map(m)},
        {"recursive bipart.", bipart.map(m)},
        {"identity", identity_mapping(workload->num_threads())},
        {"round-robin", round_robin_mapping(topology,
                                            workload->num_threads())},
        {"random", random_mapping(workload->num_threads(),
                                  machine.num_cores(), 12345)},
    };

    double random_time = 0.0;
    std::vector<double> times;
    for (const Candidate& c : candidates) {
      const MachineStats stats = pipe.evaluate(*workload, c.mapping, 7);
      times.push_back(cycles_to_seconds(stats.execution_cycles));
      if (std::string(c.label) == "random") random_time = times.back();
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      table.add_row({app, candidates[i].label,
                     fmt_count(mapping_cost(m, candidates[i].mapping,
                                            topology)),
                     fmt_double(times[i], 4),
                     fmt_double(random_time == 0.0 ? 1.0
                                                   : times[i] / random_time)});
    }
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

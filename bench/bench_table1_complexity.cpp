// Table I: comparison of the SM and HM mechanisms, including the measured
// cost scaling of their search routines.
//
// The paper derives Theta(P) per sampled miss for SM (probe one TLB set in
// each of the other P-1 cores) and Theta(P^2 * S) per sweep for HM (compare
// every pair of TLBs set by set). This bench first prints the qualitative
// table, then measures both routines with google-benchmark while sweeping
// the core count P and the TLB size S — the reported complexity columns
// should be visible in the timings.
//
// BM_HmDetectorSweep additionally A/Bs the production HmDetector: the
// paper-literal pairwise walk (naive=1) against the inverted-page-index
// sweep (naive=0), which is Theta(P * S * w) to build plus Theta(matches)
// to accumulate. Both produce bit-identical matrices (asserted in
// tests/test_detectors.cpp); the ratio here is the speedup.
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/report.hpp"
#include "detect/hm_detector.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"
#include "sim/tlb.hpp"

namespace {

using namespace tlbmap;

std::vector<Tlb> make_tlbs(int cores, std::size_t entries, std::size_t ways,
                           std::uint64_t seed) {
  TlbConfig cfg;
  cfg.entries = entries;
  cfg.ways = ways;
  std::vector<Tlb> tlbs;
  tlbs.reserve(static_cast<std::size_t>(cores));
  std::mt19937_64 rng(seed);
  for (int c = 0; c < cores; ++c) {
    Tlb tlb(cfg);
    // Fill with a mix of private and shared pages so probes hit sometimes.
    for (std::size_t i = 0; i < entries; ++i) {
      const bool shared = (rng() % 4) == 0;
      const PageNum page = shared ? rng() % (entries * 2)
                                  : (static_cast<PageNum>(c) << 32) + rng() % (entries * 2);
      tlb.insert(page);
    }
    tlbs.push_back(std::move(tlb));
  }
  return tlbs;
}

// SM: one sampled miss on core 0 probes one set of each other TLB.
void BM_SmSearch(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const std::size_t entries = static_cast<std::size_t>(state.range(1));
  auto tlbs = make_tlbs(cores, entries, 4, 42);
  std::mt19937_64 rng(7);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    const PageNum page = rng() % (entries * 2);
    for (int other = 1; other < cores; ++other) {
      matches += tlbs[static_cast<std::size_t>(other)].contains(page) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetComplexityN(cores);
}

// HM: one periodic sweep compares all pairs of TLBs, set by set.
void BM_HmSweep(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const std::size_t entries = static_cast<std::size_t>(state.range(1));
  auto tlbs = make_tlbs(cores, entries, 4, 42);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    for (int a = 0; a < cores; ++a) {
      for (int b = a + 1; b < cores; ++b) {
        for (std::size_t set = 0; set < tlbs[0].num_sets(); ++set) {
          for (const TlbEntry& ea :
               tlbs[static_cast<std::size_t>(a)].set_entries(set)) {
            if (!ea.valid) continue;
            for (const TlbEntry& eb :
                 tlbs[static_cast<std::size_t>(b)].set_entries(set)) {
              if (eb.valid && eb.page == ea.page) {
                ++matches;
                break;
              }
            }
          }
        }
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetComplexityN(cores);
}

BENCHMARK(BM_SmSearch)
    ->ArgsProduct({{2, 4, 8, 16, 32, 64}, {64}})
    ->ArgNames({"P", "S"});
BENCHMARK(BM_SmSearch)
    ->ArgsProduct({{8}, {16, 64, 256, 1024}})
    ->ArgNames({"P", "S"});  // SM is ~flat in S (set-associative probe)
BENCHMARK(BM_HmSweep)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {64}})
    ->ArgNames({"P", "S"});  // quadratic in P
BENCHMARK(BM_HmSweep)
    ->ArgsProduct({{8}, {16, 64, 256, 1024}})
    ->ArgNames({"P", "S"});  // linear in S

// Production HmDetector::sweep on a primed machine: naive pairwise walk vs
// inverted page index, same TLB contents, same resulting matrix.
void BM_HmDetectorSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool naive = state.range(1) != 0;
  MachineConfig mc = MachineConfig::harpertown();
  if (threads > mc.num_cores()) {
    mc.num_sockets =
        (threads + mc.cores_per_socket - 1) / mc.cores_per_socket;
  }
  Machine machine(mc);
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.num_threads = threads;
  spec.private_pages = 48;
  spec.shared_pages = 16;
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < threads; ++t) {
    streams.push_back(workload->stream(t, 1));
  }
  Machine::RunConfig cfg;
  for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
  machine.run(std::move(streams), cfg);  // prime the TLBs

  HmDetectorConfig hm;
  hm.naive_sweep = naive;
  HmDetector detector(machine, threads, hm);
  for (auto _ : state) {
    detector.sweep();
    benchmark::DoNotOptimize(detector.matrix());
  }
  state.SetComplexityN(threads);
}
BENCHMARK(BM_HmDetectorSweep)
    ->ArgsProduct({{8, 32, 64}, {0, 1}})
    ->ArgNames({"P", "naive"});

void print_table1() {
  using tlbmap::TextTable;
  std::printf("== Table I: proposed mechanism, SM vs HM\n\n");
  TextTable t({"", "software-managed TLB", "hardware-managed TLB"});
  t.add_row({"example architecture", "SPARC, MIPS", "Intel x86/x86-64"});
  t.add_row({"trigger", "every n-th TLB miss", "every n million cycles"});
  t.add_row({"paper's n", "100", "10,000,000"});
  t.add_row({"TLBs searched", "miss core vs all others",
             "all possible pairs"});
  t.add_row({"complexity (set-assoc.)", "Theta(P)", "Theta(P^2 * S)"});
  t.add_row({"hardware change needed", "no", "yes (TLB read instruction)"});
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Extension bench: thread mapping on NUMA (the paper's closing claim).
//
// "Expected performance improvements in NUMA architectures are higher,
// because of larger differences in communication latencies" — paper
// Sec. VII. We re-run the mapping experiment on the same topology with the
// memory system switched from UMA (front-side bus, the paper's Harpertown)
// to NUMA (one memory node per socket, first-touch homing), and also
// compare the OS page-placement policies.
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  std::vector<std::string> apps = {"BT", "SP", "UA", "MG", "FT"};
  if (argc > 2 && std::string(argv[1]) == "--apps") {
    apps.clear();
    std::string app;
    std::stringstream list(argv[2]);
    while (std::getline(list, app, ',')) apps.push_back(app);
  }

  const SuiteConfig defaults;
  WorkloadParams detect_params;
  detect_params.iter_scale = defaults.detect_iter_scale;

  std::printf("== extension: mapping gains, UMA vs NUMA\n");
  std::printf("(normalized time under the SM-detected mapping vs the mean "
              "of 4 random placements)\n\n");
  TextTable table({"app", "UMA gain", "NUMA gain", "NUMA remote fetches",
                   "tuned remote fetches"});

  for (const std::string& app : apps) {
    // Detect once on the UMA machine (detection is memory-system agnostic).
    Pipeline detector(MachineConfig::harpertown());
    detector.sm_config() = defaults.sm;
    const auto workload_detect = make_npb_workload(app, detect_params);
    const auto det = detector.detect(
        *workload_detect, Pipeline::Mechanism::kSoftwareManaged, 1);
    const Mapping tuned = detector.map(det.matrix);

    const auto workload = make_npb_workload(app);
    struct Outcome {
      double gain;
      std::uint64_t random_remote;
      std::uint64_t tuned_remote;
    };
    auto measure = [&](bool numa) {
      const MachineConfig c = numa ? MachineConfig::numa_harpertown()
                                   : MachineConfig::harpertown();
      Pipeline pipe(c);
      double random_total = 0.0;
      std::uint64_t random_remote = 0;
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const auto s = pipe.evaluate(
            *workload, random_mapping(8, 8, 100 + seed), 7);
        random_total += static_cast<double>(s.execution_cycles);
        random_remote += s.memory_fetches_remote;
      }
      const auto s = pipe.evaluate(*workload, tuned, 7);
      return Outcome{random_total / 4.0 /
                         static_cast<double>(s.execution_cycles),
                     random_remote / 4, s.memory_fetches_remote};
    };
    const Outcome uma = measure(false);
    const Outcome numa = measure(true);
    table.add_row({app, fmt_double(uma.gain), fmt_double(numa.gain),
                   fmt_count(static_cast<double>(numa.random_remote)),
                   fmt_count(static_cast<double>(numa.tuned_remote))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("gain = random-placement time / tuned time (higher is "
              "better). On NUMA, a communication-aware placement also keeps\n"
              "first-touch pages local, so the gain exceeds the UMA gain "
              "(the paper's prediction).\n\n");

  // Page placement policy comparison under the tuned mapping.
  std::printf("== page placement policy under the tuned mapping (SP)\n");
  TextTable policy_table({"policy", "time (s)", "remote fetch share"});
  const auto sp = make_npb_workload("SP");
  Pipeline det_pipe(MachineConfig::harpertown());
  det_pipe.sm_config() = defaults.sm;
  const auto sp_det = det_pipe.detect(
      *make_npb_workload("SP", detect_params),
      Pipeline::Mechanism::kSoftwareManaged, 1);
  const Mapping sp_map = det_pipe.map(sp_det.matrix);
  for (const NumaPolicy policy :
       {NumaPolicy::kFirstTouch, NumaPolicy::kInterleave}) {
    MachineConfig c = MachineConfig::numa_harpertown();
    c.numa_policy = policy;
    Pipeline pipe(c);
    const auto s = pipe.evaluate(*sp, sp_map, 7);
    const double share =
        s.memory_fetches == 0
            ? 0.0
            : static_cast<double>(s.memory_fetches_remote) /
                  static_cast<double>(s.memory_fetches);
    policy_table.add_row(
        {policy == NumaPolicy::kFirstTouch ? "first-touch" : "interleave",
         fmt_double(cycles_to_seconds(s.execution_cycles), 4),
         fmt_percent(share)});
  }
  std::printf("%s", policy_table.str().c_str());
  return 0;
}

// Figure 8: snoop transactions (cache-to-cache transfers), normalised to
// the OS scheduler baseline.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);
  bench::print_normalized_figure(suite, Metric::kSnoops,
                                 "== Figure 8: snoop transactions",
                                 "metric: snoop transaction count per run");
  return 0;
}

// Figure 7: cache-line invalidations due to the coherence protocol,
// normalised to the OS scheduler baseline.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);
  bench::print_normalized_figure(
      suite, Metric::kInvalidations,
      "== Figure 7: cache line invalidations",
      "metric: invalidation count per run");
  return 0;
}

// Engineering bench: simulator throughput (google-benchmark).
//
// Not a paper artefact — this measures the reproduction itself: simulated
// accesses per second for the main access paths, how much an attached
// detector costs the simulation, and how machine size scales. Useful when
// sizing workloads or hunting regressions in the hot path.
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "detect/hm_detector.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/sm_detector.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace {

using namespace tlbmap;

SyntheticSpec bench_spec(int threads) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.num_threads = threads;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.iterations = 2;
  return spec;
}

MachineConfig machine_for_threads(int threads) {
  MachineConfig c = MachineConfig::harpertown();
  if (threads > c.num_cores()) {
    c.num_sockets = (threads + c.cores_per_socket - 1) / c.cores_per_socket;
  }
  return c;
}

std::uint64_t run_once(int threads, MachineObserver* observer) {
  const auto workload = make_synthetic(bench_spec(threads));
  Machine machine(machine_for_threads(threads));
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < threads; ++t) {
    streams.push_back(workload->stream(t, 1));
  }
  Machine::RunConfig cfg;
  for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
  cfg.observer = observer;
  return machine.run(std::move(streams), cfg).accesses;
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    accesses += run_once(threads, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorWithSmDetector(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    // The detector needs the machine it observes; rebuild per iteration.
    const auto workload = make_synthetic(bench_spec(threads));
    Machine machine(machine_for_threads(threads));
    SmDetector sm(machine, threads, SmDetectorConfig{10, 231});
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (ThreadId t = 0; t < threads; ++t) {
      streams.push_back(workload->stream(t, 1));
    }
    Machine::RunConfig cfg;
    for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
    cfg.observer = &sm;
    accesses += machine.run(std::move(streams), cfg).accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_SimulatorWithSmDetector)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// End-to-end cost of the HM mechanism inside the simulation, with the
// sweep interval cranked down so sweeps dominate. naive=1 is the
// paper-literal pairwise walk, naive=0 the inverted-index fast path — the
// accesses/s ratio at 32 threads is the sweep speedup as the simulator
// actually experiences it.
void BM_SimulatorWithHmDetector(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool naive = state.range(1) != 0;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto workload = make_synthetic(bench_spec(threads));
    Machine machine(machine_for_threads(threads));
    HmDetectorConfig hm;
    hm.interval = 20'000;
    hm.naive_sweep = naive;
    HmDetector det(machine, threads, hm);
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (ThreadId t = 0; t < threads; ++t) {
      streams.push_back(workload->stream(t, 1));
    }
    Machine::RunConfig cfg;
    for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
    cfg.observer = &det;
    accesses += machine.run(std::move(streams), cfg).accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_SimulatorWithHmDetector)
    ->ArgsProduct({{8, 32}, {0, 1}})
    ->ArgNames({"threads", "naive"})
    ->Unit(benchmark::kMillisecond);

// Tentpole A/B: a coherence-bound run where every thread hammers one shared
// buffer, so nearly every L2 miss probes the bus and every write strips
// sharers. broadcast=1 resolves each probe by walking all num_l2 cache
// sets (the reference path); broadcast=0 uses the line-occupancy
// directory, O(holders) per transaction. The accesses/s ratio at a given
// core count is the directory speedup as the simulator experiences it;
// stats are bit-identical either way (test_fastpath_differential).
void BM_CoherenceBoundScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool broadcast = state.range(1) != 0;
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kAllToAll;
  spec.num_threads = threads;
  spec.shared_pages = 32;
  spec.private_pages = 2;
  // Past 64 cores the broadcast column costs Theta(cores) per miss with
  // cores times the threads issuing them; shrink the per-thread work there
  // so the A/B ratio stays measurable without minutes-long iterations. The
  // <=64-core points keep the original spec (comparable to old baselines).
  spec.shared_accesses = threads > 64 ? 1024 : 4096;
  spec.private_accesses = 256;
  spec.iterations = threads > 64 ? 1 : 2;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto workload = make_synthetic(spec);
    MachineConfig config = machine_for_threads(threads);
    config.cores_per_l2 = 1;  // one L2 per core: num_l2 snoop peers = cores
    config.coherence_broadcast = broadcast;
    Machine machine(config);
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (ThreadId t = 0; t < threads; ++t) {
      streams.push_back(workload->stream(t, 1));
    }
    Machine::RunConfig cfg;
    for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
    accesses += machine.run(std::move(streams), cfg).accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
// 128 and 256 cores cross the old directory's 64-L2 cliff: before the
// multi-word HolderSet these points silently ran the broadcast walk in
// both columns, so the A/B ratio collapsed to 1x exactly where the
// directory matters most.
BENCHMARK(BM_CoherenceBoundScaling)
    ->ArgsProduct({{16, 32, 64, 128, 256}, {0, 1}})
    ->ArgNames({"cores", "broadcast"})
    ->Unit(benchmark::kMillisecond);

// Tentpole A/B: the epoch-parallel engine against the serial per-event
// loop, on the same coherence-bound all-to-all workload as
// BM_CoherenceBoundScaling (directory on). workers=0 is the legacy serial
// loop, workers=1 the epoch engine run single-threaded (epoch-semantics
// overhead), workers=8 the sharded engine. Statistics are bit-identical
// across worker counts (test_parallel_machine), so the accesses/s ratio at
// a given core count is pure wall-clock speedup.
void BM_ParallelMachineScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kAllToAll;
  spec.num_threads = threads;
  spec.shared_pages = 32;
  spec.private_pages = 2;
  spec.shared_accesses = 1024;
  spec.private_accesses = 256;
  spec.iterations = 1;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto workload = make_synthetic(spec);
    MachineConfig config = machine_for_threads(threads);
    config.cores_per_l2 = 1;  // one shard per core: full fan-out
    Machine machine(config);
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (ThreadId t = 0; t < threads; ++t) {
      streams.push_back(workload->stream(t, 1));
    }
    Machine::RunConfig cfg;
    for (int t = 0; t < threads; ++t) cfg.thread_to_core.push_back(t);
    cfg.machine_workers = workers;
    accesses += machine.run(std::move(streams), cfg).accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_ParallelMachineScaling)
    ->ArgsProduct({{64, 128, 256}, {0, 1, 8}})
    ->ArgNames({"cores", "workers"})
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorWithOracle(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    OracleDetector oracle(threads);
    accesses += run_once(threads, &oracle);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_SimulatorWithOracle)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 9: L2 cache misses, normalised to the OS scheduler baseline.
// (L1 caches are private and do not benefit from mapping — paper Sec. VI-B.)
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);
  bench::print_normalized_figure(suite, Metric::kL2Misses,
                                 "== Figure 9: L2 cache misses",
                                 "metric: L2 miss count per run");
  return 0;
}

// Table III: statistics for the software-managed TLB mechanism — TLB miss
// rate, fraction of misses for which the search ran, and total overhead.
//
// Two overhead columns are reported: the one measured in the (scaled)
// detection runs, and the overhead projected at the paper's unscaled
// parameters (1-in-100 sampling, 231-cycle search), computed from the same
// measured miss counts. The HM overhead bound (search cost / interval) is
// printed below, as in the paper's Sec. VI-C.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);

  std::printf("== Table III: software-managed TLB statistics\n\n");
  TextTable table({"app", "TLB miss rate", "misses searched", "overhead",
                   "overhead @ paper params"});
  for (const AppExperiment& app : suite.apps) {
    const MachineStats& s = app.sm_detection.stats;
    const double searched =
        s.tlb_misses == 0
            ? 0.0
            : static_cast<double>(app.sm_detection.searches) /
                  static_cast<double>(s.tlb_misses);
    // Projection at the paper's parameters: every 100th miss costs 231
    // cycles on the faulting core; per-core (wall-clock) overhead is the
    // per-thread share of the misses.
    const double base_cycles = static_cast<double>(
        s.execution_cycles - s.detection_overhead_cycles);
    const double paper_overhead_cycles =
        static_cast<double>(s.tlb_misses) /
        static_cast<double>(suite.config.workload.num_threads) / 100.0 *
        231.0;
    table.add_row(
        {app.app, fmt_percent(s.tlb_miss_rate(), 3),
         fmt_percent(searched, 3), fmt_percent(s.overhead_fraction(), 3),
         fmt_percent(paper_overhead_cycles /
                         (base_cycles + paper_overhead_cycles),
                     3)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("SM search routine cost: %llu cycles per search\n",
              static_cast<unsigned long long>(suite.config.sm.search_cost));
  std::printf("HM overhead bound at the paper's parameters: 84297 cycles "
              "per sweep / 10,000,000-cycle interval = %s (paper: < 0.85%%)\n",
              fmt_percent(84297.0 / 10e6, 3).c_str());
  std::printf("HM overhead in our scaled runs: %llu / %llu = %s\n",
              static_cast<unsigned long long>(suite.config.hm.search_cost),
              static_cast<unsigned long long>(suite.config.hm.interval),
              fmt_percent(static_cast<double>(suite.config.hm.search_cost) /
                              static_cast<double>(suite.config.hm.interval),
                          3)
                  .c_str());
  return 0;
}

// Ablation: detection accuracy vs detection cost.
//
// Sweeps the SM sampling threshold (the paper fixes 1-in-100) and the HM
// sweep interval (the paper fixes 10M cycles) on one structured benchmark
// (BT) and one with strong phase behaviour (IS, the paper's HM pathology).
// Shows the trade-off the paper describes in Sec. IV: sampling less often
// costs accuracy, sampling more often costs cycles.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"

int main() {
  using namespace tlbmap;
  const SuiteConfig defaults;
  WorkloadParams params;
  params.iter_scale = defaults.detect_iter_scale;

  for (const char* app : {"BT", "IS"}) {
    const auto workload = make_npb_workload(app, params);
    Pipeline pipe(MachineConfig::harpertown());
    const auto oracle =
        pipe.detect(*workload, Pipeline::Mechanism::kOracle, /*seed=*/1);

    std::printf("== ablation: SM sampling threshold sweep on %s\n", app);
    TextTable sm_table({"1-in-n", "searches", "cosine vs oracle",
                        "rank vs oracle", "measured overhead"});
    for (const std::uint32_t threshold : {1u, 3u, 10u, 30u, 100u, 1000u}) {
      pipe.sm_config() = SmDetectorConfig{threshold, 231};
      const auto det = pipe.detect(
          *workload, Pipeline::Mechanism::kSoftwareManaged, /*seed=*/1);
      sm_table.add_row(
          {std::to_string(threshold),
           std::to_string(det.searches),
           fmt_double(CommMatrix::cosine_similarity(det.matrix,
                                                    oracle.matrix)),
           fmt_double(CommMatrix::rank_correlation(det.matrix,
                                                   oracle.matrix)),
           fmt_percent(det.stats.overhead_fraction(), 3)});
    }
    std::printf("%s\n", sm_table.str().c_str());

    std::printf("== ablation: HM sweep interval sweep on %s\n", app);
    TextTable hm_table({"interval (cycles)", "sweeps", "cosine vs oracle",
                        "rank vs oracle", "measured overhead"});
    for (const Cycles interval :
         {50'000ull, 100'000ull, 400'000ull, 1'600'000ull, 6'400'000ull}) {
      // Sweep cost kept proportional to the interval scale so the overhead
      // ratio stays the paper's ~0.84 %.
      pipe.hm_config() = HmDetectorConfig{
          interval, static_cast<Cycles>(static_cast<double>(interval) *
                                        84297.0 / 10e6)};
      const auto det = pipe.detect(
          *workload, Pipeline::Mechanism::kHardwareManaged, /*seed=*/1);
      hm_table.add_row(
          {std::to_string(interval), std::to_string(det.searches),
           fmt_double(CommMatrix::cosine_similarity(det.matrix,
                                                    oracle.matrix)),
           fmt_double(CommMatrix::rank_correlation(det.matrix,
                                                   oracle.matrix)),
           fmt_percent(det.stats.overhead_fraction(), 3)});
    }
    std::printf("%s\n", hm_table.str().c_str());
  }
  return 0;
}

// Table V: relative standard deviations of the performance experiments.
// The paper's headline observation reproduced here: the OS baseline has
// much higher execution-time variance than the communication-aware
// mappings, because the unaware scheduler lands on a different (often bad)
// placement every run.
#include "suite_common.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;
  const SuiteResult suite = bench::load_suite(argc, argv);

  std::printf("== Table V: standard deviations (relative to the mean, over "
              "%d runs)\n\n",
              suite.config.repetitions);

  const struct {
    Metric metric;
    const char* label;
  } kRows[] = {
      {Metric::kTimeSeconds, "execution time"},
      {Metric::kInvalidationsPerSec, "invalidations"},
      {Metric::kSnoopsPerSec, "snoop transactions"},
      {Metric::kL2MissesPerSec, "L2 misses"},
  };

  for (const auto& row : kRows) {
    std::printf("-- %s\n", row.label);
    std::vector<std::string> header = {"mapping"};
    for (const AppExperiment& app : suite.apps) header.push_back(app.app);
    TextTable t(header);
    for (const char* mapping : {"OS", "SM", "HM"}) {
      std::vector<std::string> cells = {mapping};
      for (const AppExperiment& app : suite.apps) {
        const MappingRuns& runs = mapping == std::string("OS")   ? app.os_runs
                                  : mapping == std::string("SM") ? app.sm_runs
                                                                 : app.hm_runs;
        cells.push_back(
            fmt_percent(summarize_runs(runs, row.metric).rel_stddev(), 2));
      }
      t.add_row(std::move(cells));
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
